package router_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dbimadg/internal/fleet"
	"dbimadg/internal/imcs"
	"dbimadg/internal/primary"
	"dbimadg/internal/rac"
	"dbimadg/internal/redo"
	"dbimadg/internal/router"
	"dbimadg/internal/rowstore"
	"dbimadg/internal/service"
	"dbimadg/internal/standby"
	"dbimadg/internal/transport"
)

type rig struct {
	pri *primary.Cluster
	sc  *rac.StandbyCluster
	tbl *rowstore.Table
	flt *fleet.Manager
	rtr *router.Router
}

func newRig(t *testing.T, spec fleet.Spec) *rig {
	t.Helper()
	pri := primary.NewCluster(1, 32)
	sc := rac.NewStandbyCluster(standby.Config{
		RowsPerBlock:       32,
		CheckpointInterval: time.Millisecond,
		PopulationInterval: time.Millisecond,
		BlocksPerIMCU:      4,
	}, 0)
	var streams []*redo.Stream
	for _, inst := range pri.Instances() {
		streams = append(streams, inst.Stream())
	}
	sc.Attach(transport.NewInProc(streams...))
	sc.Start()
	t.Cleanup(sc.Stop)

	tbl, err := pri.Instance(0).CreateTable(&rowstore.TableSpec{
		Name: "T", Tenant: 1,
		Columns: []rowstore.Column{
			{Name: "id", Kind: rowstore.KindNumber},
			{Name: "n1", Kind: rowstore.KindNumber},
		},
		IdentityCol: 0, PartitionCol: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pri.Instance(0).AlterInMemory(1, "T", "", rowstore.InMemoryAttr{Enabled: true, Service: "standby"}); err != nil {
		t.Fatal(err)
	}

	g := &rig{pri: pri, sc: sc, tbl: tbl}
	g.insert(t, 0, 300)
	if !sc.Master.WaitForSCN(pri.Snapshot(), 10*time.Second) {
		t.Fatal("master lagging")
	}
	g.flt = fleet.NewManager(sc, spec, imcs.Config{BlocksPerIMCU: 4, Interval: time.Millisecond})
	t.Cleanup(g.flt.Shutdown)
	if spec.Readers > 0 && !g.flt.WaitReady(10*time.Second) {
		t.Fatalf("fleet never Ready: %+v", g.flt.Stats())
	}
	g.rtr = router.New(g.flt, sc.Master.Services(), sc.Master.Obs())
	return g
}

func (g *rig) insert(t *testing.T, from, to int64) {
	t.Helper()
	s := g.tbl.Schema()
	tx := g.pri.Instance(0).Begin()
	for i := from; i < to; i++ {
		r := rowstore.NewRow(s)
		r.Nums[s.Col(0).Slot()] = i
		r.Nums[s.Col(1).Slot()] = i % 10
		if _, err := tx.Insert(g.tbl, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceAndRelease routes one scan onto a Ready reader, holding and then
// returning its admission slot.
func TestPlaceAndRelease(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 1})
	p, err := g.rtr.Place(router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reader == nil || p.Reader.State() != fleet.StateReady {
		t.Fatalf("placed on non-Ready reader: %+v", p.Reader)
	}
	if p.Reader.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", p.Reader.InFlight())
	}
	p.Release()
	p.Release() // idempotent
	if p.Reader.InFlight() != 0 {
		t.Fatalf("in-flight after release = %d, want 0", p.Reader.InFlight())
	}
	tot := g.rtr.Totals()
	if tot.Placed != 1 || tot.Shed != 0 || tot.NoReader != 0 {
		t.Fatalf("totals = %+v", tot)
	}
}

// TestLeastLoadedSpread checks placements prefer the idle reader when one is
// busy.
func TestLeastLoadedSpread(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 2})
	a, err := g.rtr.Place(router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	b, err := g.rtr.Place(router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if a.Reader.ID() == b.Reader.ID() {
		t.Fatalf("both placements landed on reader %d with an idle peer", a.Reader.ID())
	}
}

// TestEmptyFleetErrNoReader: routing over an empty fleet fails typed after
// the bounded wait (and immediately with Wait < 0).
func TestEmptyFleetErrNoReader(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 0})
	start := time.Now()
	_, err := g.rtr.Place(router.Options{Wait: 20 * time.Millisecond})
	if !errors.Is(err, router.ErrNoReader) {
		t.Fatalf("err = %v, want ErrNoReader", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Place returned before the bounded wait expired")
	}
	start = time.Now()
	if _, err := g.rtr.Place(router.Options{Wait: -1}); !errors.Is(err, router.ErrNoReader) {
		t.Fatalf("no-wait err = %v, want ErrNoReader", err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("Wait<0 placement did not return promptly")
	}
	if tot := g.rtr.Totals(); tot.NoReader != 2 {
		t.Fatalf("no_reader total = %d, want 2", tot.NoReader)
	}
}

// TestTokenGatesPlacement: a read-your-writes token past every reader's
// QuerySCN blocks placement; once redo advances the readers to it, the same
// placement succeeds within its wait.
func TestTokenGatesPlacement(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 1})
	future := g.flt.Watermark() + 1_000_000
	if _, err := g.rtr.Place(router.Options{Token: future, Wait: -1}); !errors.Is(err, router.ErrNoReader) {
		t.Fatalf("future-token err = %v, want ErrNoReader", err)
	}

	// Commit more rows; the commit's SCN is the token a session would carry.
	g.insert(t, 300, 400)
	token := g.pri.Snapshot()
	p, err := g.rtr.Place(router.Options{Token: token, Wait: 5 * time.Second})
	if err != nil {
		t.Fatalf("post-commit token placement: %v", err)
	}
	defer p.Release()
	if q := p.Reader.QuerySCN(); q < token {
		t.Fatalf("placed reader QuerySCN %d below token %d", q, token)
	}
}

// TestMaxLagBound: a caught-up reader passes a tight freshness bound; the
// bound's arithmetic is exercised against the live watermark.
func TestMaxLagBound(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 1})
	r := g.flt.Readers()[0]
	// Let the reader reach the watermark so lag is zero.
	if !g.sc.Master.WaitForSCN(g.pri.Snapshot(), 10*time.Second) {
		t.Fatal("master lagging")
	}
	deadline := time.Now().Add(10 * time.Second)
	for r.QuerySCN() < g.flt.Watermark() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p, err := g.rtr.Place(router.Options{MaxLag: 1})
	if err != nil {
		t.Fatalf("caught-up reader failed MaxLag=1: %v (lag=%d)", err, g.flt.Watermark()-r.QuerySCN())
	}
	p.Release()
}

// TestOverloadSheds: with one slot and no queue headroom, concurrent
// placements shed typed, and the router does not double-wait on top of the
// admission deadline.
func TestOverloadSheds(t *testing.T) {
	g := newRig(t, fleet.Spec{
		Readers:            1,
		MaxConcurrentScans: 1,
		QueueDepth:         1,
		QueueTimeout:       5 * time.Millisecond,
	})
	p, err := g.rtr.Place(router.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	// Fill the single queue slot with a parked waiter.
	parked := make(chan error, 1)
	go func() {
		q, err := g.rtr.Place(router.Options{})
		if err == nil {
			q.Release()
		}
		parked <- err
	}()
	// The next arrival finds slot and queue taken: ErrOverloaded, promptly.
	deadline := time.Now().Add(2 * time.Second)
	var shedErr error
	for time.Now().Before(deadline) {
		_, shedErr = g.rtr.Place(router.Options{})
		if errors.Is(shedErr, router.ErrOverloaded) {
			break
		}
	}
	if !errors.Is(shedErr, router.ErrOverloaded) {
		t.Fatalf("saturated placement err = %v, want ErrOverloaded", shedErr)
	}
	if err := <-parked; err != nil && !errors.Is(err, router.ErrOverloaded) {
		t.Fatalf("parked waiter err = %v", err)
	}
	if tot := g.rtr.Totals(); tot.Shed == 0 {
		t.Fatalf("shed total = 0 after overload: %+v", tot)
	}
}

// TestServiceEligibility: placements resolve the service against the live
// registry — a service that does not run on the standby role never places,
// and an Unregister mid-flight stops new placements immediately.
func TestServiceEligibility(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 1})
	reg := g.sc.Master.Services()

	if _, err := g.rtr.Place(router.Options{Service: service.PrimaryOnly, Wait: -1}); !errors.Is(err, router.ErrNoReader) {
		t.Fatalf("primary-only service err = %v, want ErrNoReader", err)
	}
	if _, err := g.rtr.Place(router.Options{Service: "reporting", Wait: -1}); !errors.Is(err, router.ErrNoReader) {
		t.Fatalf("unknown service err = %v, want ErrNoReader", err)
	}
	if err := reg.Register("reporting", service.RoleStandby); err != nil {
		t.Fatal(err)
	}
	p, err := g.rtr.Place(router.Options{Service: "reporting"})
	if err != nil {
		t.Fatalf("registered service placement: %v", err)
	}
	p.Release()
	reg.Unregister("reporting")
	if _, err := g.rtr.Place(router.Options{Service: "reporting", Wait: -1}); !errors.Is(err, router.ErrNoReader) {
		t.Fatalf("unregistered service err = %v, want ErrNoReader", err)
	}
}

// TestConcurrentRoutingUnderRegistryChurn flips a service's registration
// while sessions place through it — the live ALTER SERVICE pattern. Every
// outcome must be a placement or a typed error; runs under -race.
func TestConcurrentRoutingUnderRegistryChurn(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 2})
	reg := g.sc.Master.Services()
	if err := reg.Register("reporting", service.RoleStandby); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				reg.Unregister("reporting")
			} else if err := reg.Register("reporting", service.RoleStandby); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p, err := g.rtr.Place(router.Options{Service: "reporting", Wait: -1})
				switch {
				case err == nil:
					p.Release()
				case errors.Is(err, router.ErrNoReader), errors.Is(err, router.ErrOverloaded):
				default:
					t.Errorf("unexpected placement error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if err := reg.Register("reporting", service.RoleStandby); err != nil {
		t.Fatal(err)
	}
	if p, err := g.rtr.Place(router.Options{Service: "reporting"}); err != nil {
		t.Fatalf("routing broken after churn: %v", err)
	} else {
		p.Release()
	}
}

// TestFleetChurnDuringRouting adds and removes readers while sessions route:
// placements must only land on Ready readers and never error untyped.
func TestFleetChurnDuringRouting(t *testing.T) {
	g := newRig(t, fleet.Spec{Readers: 1, DrainTimeout: time.Second})
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for n := 2; ; n = 3 - n { // alternate 2, 1, 2, 1...
			select {
			case <-stop:
				return
			default:
			}
			g.flt.SetReaders(n)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := 0; i < 300; i++ {
		p, err := g.rtr.Place(router.Options{Wait: 50 * time.Millisecond})
		switch {
		case err == nil:
			if st := p.Reader.State(); st != fleet.StateReady && st != fleet.StateDraining {
				t.Errorf("placement on reader in state %v", st)
			}
			p.Release()
		case errors.Is(err, router.ErrNoReader), errors.Is(err, router.ErrOverloaded):
		default:
			t.Fatalf("unexpected routing error: %v", err)
		}
	}
	close(stop)
	churn.Wait()
}
