// Package router is the standby fleet's front door: it places sessions onto
// fleet readers by service role, apply lag, and read-your-writes tokens, with
// least-loaded tie-breaking and per-reader admission control underneath. The
// paper's §I positions services as the client-visible routing layer ("the
// Standby-only service... directs analytic sessions to the standby"); this
// router adds the freshness semantics a lag-prone standby needs:
//
//   - Service eligibility: the named service must run on the standby role in
//     the master's (dynamic) service registry, re-checked on every placement
//     so a mid-flight Unregister stops new placements immediately.
//   - Freshness bound: readers whose QuerySCN trails the fleet watermark by
//     more than MaxLag SCNs are skipped.
//   - Read-your-writes: a session presenting a commit's QuerySCN token is
//     placed only on readers at or past it, waiting (bounded) for one to
//     catch up before failing with ErrNoReader.
//
// Placement acquires the chosen reader's admission slot, so a Place that
// returns also reserved capacity; overload on every eligible reader sheds
// with ErrOverloaded rather than queueing unboundedly.
package router

import (
	"time"

	"dbimadg/internal/fleet"
	"dbimadg/internal/obs"
	"dbimadg/internal/scn"
	"dbimadg/internal/service"
)

// Typed routing errors, re-exported from the fleet (one source of truth, so
// errors.Is matches across layers).
var (
	ErrNoReader   = fleet.ErrNoReader
	ErrOverloaded = fleet.ErrOverloaded
)

// Options constrain one placement.
type Options struct {
	// Service names the service the session connects through (default
	// service.StandbyOnly). It must run on the standby role at placement
	// time; otherwise the placement fails with ErrNoReader.
	Service string
	// MaxLag is the freshness bound: readers trailing the fleet watermark by
	// more than this many SCNs are skipped (0 = no bound).
	MaxLag scn.SCN
	// Token is a read-your-writes QuerySCN token (a primary commit's SCN):
	// only readers at or past it are eligible (0 = none).
	Token scn.SCN
	// Wait bounds how long the placement waits for an eligible reader to
	// appear or catch up before failing (default 100ms; negative = no wait,
	// single attempt).
	Wait time.Duration
}

func (o Options) withDefaults() Options {
	if o.Service == "" {
		o.Service = service.StandbyOnly
	}
	if o.Wait == 0 {
		o.Wait = 100 * time.Millisecond
	} else if o.Wait < 0 {
		o.Wait = 0
	}
	return o
}

// Placement is a successful routing decision: the chosen reader with one
// admission slot held. Callers must Release when the scan completes.
type Placement struct {
	Reader  *fleet.Reader
	release func()
}

// Release returns the admission slot. Idempotent.
func (p *Placement) Release() {
	if p.release != nil {
		p.release()
		p.release = nil
	}
}

// Router places scans onto fleet readers.
type Router struct {
	fleet    *fleet.Manager
	services *service.Registry

	placed    *obs.Counter
	shed      *obs.Counter
	noReader  *obs.Counter
	placeHist *obs.Histogram
}

// New builds a router over the fleet, resolving services against registry
// and recording routing metrics (placement latency histogram, routed/shed/
// no-reader counters) on reg.
func New(fl *fleet.Manager, registry *service.Registry, reg *obs.Registry) *Router {
	r := &Router{fleet: fl, services: registry}
	r.placed = reg.Counter("router_placed_total", "sessions placed on a fleet reader")
	r.shed = reg.Counter("router_shed_total", "placements shed with ErrOverloaded")
	r.noReader = reg.Counter("router_no_reader_total", "placements failed with ErrNoReader")
	r.placeHist = reg.Histogram("router_place_seconds", "placement latency",
		obs.DurationBuckets(time.Microsecond, time.Second, 4))
	return r
}

// Fleet returns the routed fleet manager.
func (r *Router) Fleet() *fleet.Manager { return r.fleet }

// Totals is the router's cumulative routing outcome summary (the /debug/stats
// "router" block and the adgtop default-pane totals).
type Totals struct {
	Placed   int64 `json:"placed"`
	Shed     int64 `json:"shed"`
	NoReader int64 `json:"no_reader"`
	// Placement latency quantiles in milliseconds (0 until the first Place).
	PlaceP50MS float64 `json:"place_p50_ms"`
	PlaceP95MS float64 `json:"place_p95_ms"`
	PlaceP99MS float64 `json:"place_p99_ms"`
}

// Totals snapshots the router's counters and placement-latency quantiles.
func (r *Router) Totals() Totals {
	t := Totals{
		Placed:   r.placed.Value(),
		Shed:     r.shed.Value(),
		NoReader: r.noReader.Value(),
	}
	if s := r.placeHist.Snapshot(); s.Count > 0 {
		t.PlaceP50MS = s.Quantile(0.50) * 1e3
		t.PlaceP95MS = s.Quantile(0.95) * 1e3
		t.PlaceP99MS = s.Quantile(0.99) * 1e3
	}
	return t
}

// Place routes one scan: it picks the least-loaded eligible reader and
// acquires its admission slot. Eligibility is (Ready) && (lag within
// MaxLag) && (QuerySCN >= Token) && (service runs on standby). When no
// reader is eligible it polls until opts.Wait expires, then fails with
// ErrNoReader; when eligible readers exist but all shed, it fails with
// ErrOverloaded.
func (r *Router) Place(opts Options) (*Placement, error) {
	opts = opts.withDefaults()
	start := time.Now()
	defer func() { r.placeHist.ObserveDuration(time.Since(start)) }()
	deadline := start.Add(opts.Wait)
	for {
		p, err := r.tryPlace(opts)
		if err == nil {
			r.placed.Inc()
			return p, nil
		}
		if err == ErrOverloaded {
			// Admission already waited its queue deadline; don't double-wait.
			r.shed.Inc()
			return nil, err
		}
		if !time.Now().Before(deadline) {
			r.noReader.Inc()
			return nil, ErrNoReader
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// tryPlace is one placement attempt over the current fleet membership.
func (r *Router) tryPlace(opts Options) (*Placement, error) {
	// Dynamic service check on every attempt: an Unregister mid-routing stops
	// new placements immediately.
	if !r.services.RunsOn(opts.Service, service.RoleStandby) {
		return nil, ErrNoReader
	}
	wm := r.fleet.Watermark()
	var eligible []*fleet.Reader
	for _, rd := range r.fleet.Readers() {
		if rd.State() != fleet.StateReady {
			continue
		}
		q := rd.QuerySCN()
		if opts.MaxLag > 0 && q < wm && wm-q > opts.MaxLag {
			continue
		}
		if opts.Token > 0 && q < opts.Token {
			continue
		}
		eligible = append(eligible, rd)
	}
	if len(eligible) == 0 {
		return nil, ErrNoReader
	}
	// Least-loaded first; on admission shed, fall through to the next.
	for range eligible {
		best, bestIdx := eligible[0], 0
		for i, rd := range eligible[1:] {
			if rd.Load() < best.Load() {
				best, bestIdx = rd, i+1
			}
		}
		eligible = append(eligible[:bestIdx], eligible[bestIdx+1:]...)
		release, err := best.Admit()
		if err == nil {
			return &Placement{Reader: best, release: release}, nil
		}
		if err == ErrNoReader {
			continue // reader left Ready while we queued; try another
		}
		if len(eligible) == 0 {
			return nil, ErrOverloaded
		}
	}
	return nil, ErrOverloaded
}
