package redo

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"dbimadg/internal/rowstore"
	"dbimadg/internal/scn"
)

func sampleRecord() *Record {
	return &Record{
		SCN:    12345,
		Thread: 2,
		CVs: []CV{
			{
				Kind: CVBegin, Txn: 7, Tenant: 3,
			},
			{
				Kind: CVInsert, Txn: 7, Tenant: 3,
				DBA: rowstore.MakeDBA(42, 9), Slot: 17,
				Row: rowstore.Row{Nums: []int64{1, -5, 1 << 40}, Strs: []string{"hello", "", "wörld"}},
			},
			{
				Kind: CVUpdate, Txn: 7, Tenant: 3,
				DBA: rowstore.MakeDBA(42, 10), Slot: 3,
				Row:         rowstore.Row{Nums: []int64{9}, Strs: []string{"x"}},
				ChangedCols: []uint16{1, 4},
			},
			{
				Kind: CVCommit, Txn: 7, Tenant: 3, HasIMCS: true,
			},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	r := sampleRecord()
	buf := AppendRecord(nil, r)
	got, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", r, got)
	}
}

func TestCodecMarkerRoundTrip(t *testing.T) {
	r := &Record{
		SCN: 5, Thread: 1,
		CVs: []CV{{
			Kind: CVMarker, Tenant: 1,
			Marker: &Marker{
				Kind: MarkerAlterInMemory, Tenant: 1, TableName: "SALES", Partition: "JAN",
				InMemory: &rowstore.InMemoryAttr{Enabled: true, Service: "standby", Priority: 5},
			},
		}},
	}
	got, err := DecodeRecord(AppendRecord(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("marker round trip mismatch:\n in: %+v\nout: %+v", r.CVs[0].Marker, got.CVs[0].Marker)
	}
}

func TestCodecCreateTableMarker(t *testing.T) {
	spec := &rowstore.TableSpec{
		Name: "T", Tenant: 2,
		Columns:     []rowstore.Column{{Name: "id", Kind: rowstore.KindNumber}, {Name: "c", Kind: rowstore.KindVarchar}},
		IdentityCol: 0, PartitionCol: -1,
		Partitions: []rowstore.PartitionSpec{{Name: "", Lo: -1 << 62, Hi: 1 << 62, Obj: 99}},
	}
	r := &Record{SCN: 1, CVs: []CV{{Kind: CVMarker, Marker: &Marker{Kind: MarkerCreateTable, Spec: spec}}}}
	got, err := DecodeRecord(AppendRecord(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	gs := got.CVs[0].Marker.Spec
	if gs.Name != "T" || gs.Partitions[0].Obj != 99 || len(gs.Columns) != 2 {
		t.Fatalf("spec mangled: %+v", gs)
	}
}

func TestCodecTruncatedInput(t *testing.T) {
	buf := AppendRecord(nil, sampleRecord())
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeRecord(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(buf))
		}
	}
	// Trailing garbage must also be rejected.
	if _, err := DecodeRecord(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCodecRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rec := &Record{SCN: scn.SCN(rng.Uint64() >> 1), Thread: uint16(rng.Intn(4))}
		nCV := rng.Intn(6)
		for i := 0; i < nCV; i++ {
			cv := CV{
				Kind: CVKind(rng.Intn(6) + 1), Txn: scn.TxnID(rng.Uint64() >> 1),
				Tenant: rowstore.TenantID(rng.Uint32()),
				DBA:    rowstore.DBA(rng.Uint64()), Slot: uint16(rng.Uint32()),
				HasIMCS: rng.Intn(2) == 0,
			}
			if cv.Kind == CVInsert || cv.Kind == CVUpdate {
				for j := rng.Intn(5); j > 0; j-- {
					cv.Row.Nums = append(cv.Row.Nums, rng.Int63()-rng.Int63())
				}
				for j := rng.Intn(5); j > 0; j-- {
					b := make([]byte, rng.Intn(20))
					rng.Read(b)
					cv.Row.Strs = append(cv.Row.Strs, string(b))
				}
			}
			if cv.Kind == CVUpdate {
				for j := rng.Intn(3); j > 0; j-- {
					cv.ChangedCols = append(cv.ChangedCols, uint16(rng.Uint32()))
				}
			}
			rec.CVs = append(rec.CVs, cv)
		}
		got, err := DecodeRecord(AppendRecord(nil, rec))
		return err == nil && reflect.DeepEqual(rec, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r1, r2 := sampleRecord(), sampleRecord()
	r2.SCN = 99999
	if _, err := WriteFrame(&buf, r1); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFrame(&buf, r2); err != nil {
		t.Fatal(err)
	}
	g1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g1.SCN != r1.SCN || g2.SCN != 99999 {
		t.Fatalf("frames out of order: %d %d", g1.SCN, g2.SCN)
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestStreamAppendRead(t *testing.T) {
	s := NewStream(1)
	for i := 1; i <= 10; i++ {
		s.Append(&Record{SCN: scn.SCN(i * 10), Thread: 1})
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.LastSCN() != 100 {
		t.Fatalf("LastSCN = %d", s.LastSCN())
	}
	if s.Bytes() <= 0 {
		t.Fatal("Bytes not accounted")
	}
	rd := NewReader(s, 0)
	for i := 1; i <= 10; i++ {
		rec, ok := rd.Next()
		if !ok || rec.SCN != scn.SCN(i*10) {
			t.Fatalf("Next %d = %v %v", i, rec, ok)
		}
	}
	s.Close()
	if _, ok := rd.Next(); ok {
		t.Fatal("read past end-of-log")
	}
}

func TestStreamOutOfOrderPanics(t *testing.T) {
	s := NewStream(1)
	s.Append(&Record{SCN: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(&Record{SCN: 50})
}

func TestStreamBlockingReader(t *testing.T) {
	s := NewStream(1)
	got := make(chan scn.SCN, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec, ok := NewReader(s, 0).Next()
		if ok {
			got <- rec.SCN
		}
	}()
	s.Append(&Record{SCN: 7})
	wg.Wait()
	if v := <-got; v != 7 {
		t.Fatalf("blocked reader got %d", v)
	}
}

func TestStreamReattachAtSCN(t *testing.T) {
	s := NewStream(1)
	for i := 1; i <= 10; i++ {
		s.Append(&Record{SCN: scn.SCN(i * 10)})
	}
	rd := NewReaderAtSCN(s, 55)
	rec, ok := rd.Next()
	if !ok || rec.SCN != 60 {
		t.Fatalf("reattach: got %v %v, want SCN 60", rec, ok)
	}
	// Exact hit attaches at the record itself.
	rd = NewReaderAtSCN(s, 60)
	rec, _ = rd.Next()
	if rec.SCN != 60 {
		t.Fatalf("reattach exact: got SCN %d", rec.SCN)
	}
}

func TestStreamTryNext(t *testing.T) {
	s := NewStream(1)
	rd := NewReader(s, 0)
	if _, ok, eol := rd.TryNext(); ok || eol {
		t.Fatal("empty open stream should report not-ready")
	}
	s.Append(&Record{SCN: 1})
	if rec, ok, _ := rd.TryNext(); !ok || rec.SCN != 1 {
		t.Fatal("TryNext missed appended record")
	}
	s.Close()
	if _, ok, eol := rd.TryNext(); ok || !eol {
		t.Fatal("closed drained stream should report end-of-log")
	}
}

func TestCodecOriginExtensionRoundTrip(t *testing.T) {
	r := sampleRecord()
	r.OriginNS = 1_722_000_000_123_456_789
	buf := AppendRecord(nil, r)
	got, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("origin round trip mismatch:\n in: %+v\nout: %+v", r, got)
	}
	// The stamped frame must also survive the full wire framing.
	var w bytes.Buffer
	if _, err := WriteFrame(&w, r); err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFrame(&w)
	if err != nil {
		t.Fatal(err)
	}
	if got2.OriginNS != r.OriginNS {
		t.Fatalf("framed origin = %d, want %d", got2.OriginNS, r.OriginNS)
	}
}

func TestCodecLegacyRecordDecodes(t *testing.T) {
	// A record without extensions is byte-identical to the pre-extension
	// format; decoding it must succeed with OriginNS zero.
	r := sampleRecord()
	buf := AppendRecord(nil, r)
	withExt := AppendRecord(nil, &Record{SCN: r.SCN, Thread: r.Thread, CVs: r.CVs, OriginNS: 1})
	if len(withExt) <= len(buf) {
		t.Fatal("extension did not extend the encoding")
	}
	got, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.OriginNS != 0 {
		t.Fatalf("legacy record decoded OriginNS = %d, want 0", got.OriginNS)
	}
}

func TestCodecUnknownExtensionSkipped(t *testing.T) {
	r := sampleRecord()
	r.OriginNS = 42
	buf := AppendRecord(nil, r)
	// A future sender appends an extension this decoder does not know.
	buf = append(buf, 0x7E)    // unknown tag
	buf = append(buf, 3)       // payload length
	buf = append(buf, 9, 9, 9) // opaque payload
	got, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("unknown extension rejected: %v", err)
	}
	if got.OriginNS != 42 {
		t.Fatalf("known extension lost while skipping unknown one: OriginNS = %d", got.OriginNS)
	}
}

func TestCodecExtensionCorruption(t *testing.T) {
	r := sampleRecord()
	r.OriginNS = 42
	buf := AppendRecord(nil, r)
	// Reserved tag zero reads as corruption.
	if _, err := DecodeRecord(append(append([]byte{}, buf...), 0, 1, 1)); err == nil {
		t.Fatal("reserved tag 0 accepted")
	}
	// Truncated extension payloads are rejected at every cut.
	for cut := len(buf) - 1; cut > len(buf)-8; cut-- {
		if _, err := DecodeRecord(buf[:cut]); err == nil {
			// Cutting the whole extension off is legal (optional block); any
			// partial cut is not. Find the extension start to tell them apart.
			plain := AppendRecord(nil, &Record{SCN: r.SCN, Thread: r.Thread, CVs: r.CVs})
			if cut != len(plain) {
				t.Fatalf("truncated extension at %d/%d accepted", cut, len(buf))
			}
		}
	}
}
