// Package redo defines the redo log: change vectors (CVs), redo records,
// their binary wire encoding, and SCN-ordered log streams.
//
// This mirrors the structure described in §II.A of the paper: a redo record
// can contain multiple change vectors, each applicable to a single database
// block identified by its DBA; all CVs of a record share the record's SCN;
// every CV is tagged with its transaction identifier; a transaction's commit
// point is a special "commit CV" whose record SCN is the commitSCN. Redo
// markers (§III.G) describe changes to non-persistent objects such as IMCUs
// and carry DDL information.
package redo

import (
	"fmt"

	"dbimadg/internal/rowstore"
	"dbimadg/internal/scn"
)

// CVKind discriminates change-vector types.
type CVKind uint8

const (
	// CVInsert places a new row (full after-image) at DBA/Slot.
	CVInsert CVKind = iota + 1
	// CVUpdate overwrites the row at DBA/Slot with a full after-image and
	// lists the changed columns (used by the mining component).
	CVUpdate
	// CVDelete marks the row at DBA/Slot deleted.
	CVDelete
	// CVBegin is the "transaction begin" control record.
	CVBegin
	// CVCommit is the commit CV: its record SCN is the transaction's
	// commitSCN. It carries the specialized-redo-generation flag (§III.E)
	// indicating whether the transaction touched any IMCS-enabled object.
	CVCommit
	// CVAbort is the rollback control record; the transaction's versions
	// become permanently invisible.
	CVAbort
	// CVMarker is a redo marker (§III.G): a non-transactional record used for
	// DDL/catalog information that must reach the standby's in-memory
	// components.
	CVMarker
)

func (k CVKind) String() string {
	switch k {
	case CVInsert:
		return "INSERT"
	case CVUpdate:
		return "UPDATE"
	case CVDelete:
		return "DELETE"
	case CVBegin:
		return "BEGIN"
	case CVCommit:
		return "COMMIT"
	case CVAbort:
		return "ABORT"
	case CVMarker:
		return "MARKER"
	default:
		return fmt.Sprintf("CVKind(%d)", uint8(k))
	}
}

// IsControl reports whether the CV carries transaction control information
// rather than data changes.
func (k CVKind) IsControl() bool {
	return k == CVBegin || k == CVCommit || k == CVAbort
}

// MarkerKind discriminates redo-marker payloads.
type MarkerKind uint8

const (
	// MarkerCreateTable replicates a catalog CREATE TABLE (with preassigned
	// object ids so the replica is physically identical).
	MarkerCreateTable MarkerKind = iota + 1
	// MarkerTruncate truncates a segment (TRUNCATE TABLE/PARTITION).
	MarkerTruncate
	// MarkerDropColumn is a dictionary-level DROP COLUMN.
	MarkerDropColumn
	// MarkerAlterInMemory changes the INMEMORY attributes of a table or
	// partition (enable/disable population, placement service).
	MarkerAlterInMemory
)

func (k MarkerKind) String() string {
	switch k {
	case MarkerCreateTable:
		return "CREATE TABLE"
	case MarkerTruncate:
		return "TRUNCATE"
	case MarkerDropColumn:
		return "DROP COLUMN"
	case MarkerAlterInMemory:
		return "ALTER INMEMORY"
	default:
		return fmt.Sprintf("MarkerKind(%d)", uint8(k))
	}
}

// Marker is a redo-marker payload.
type Marker struct {
	Kind      MarkerKind
	Tenant    rowstore.TenantID
	TableName string
	// Partition is the target partition name ("" = whole table).
	Partition string
	// Obj is the affected data object (truncate); zero when not applicable.
	Obj rowstore.ObjID
	// Column is the dropped column name for MarkerDropColumn.
	Column string
	// Spec is the replicated table definition for MarkerCreateTable.
	Spec *rowstore.TableSpec
	// InMemory is the attribute payload for MarkerAlterInMemory.
	InMemory *rowstore.InMemoryAttr
}

// CV is a single change vector.
type CV struct {
	Kind   CVKind
	Txn    scn.TxnID
	Tenant rowstore.TenantID
	DBA    rowstore.DBA
	Slot   uint16

	// Row is the full after-image for CVInsert/CVUpdate. Full-image logging
	// (rather than Oracle's byte-level block deltas) keeps parallel apply
	// workers free of any cross-block base-image dependency; the mining and
	// invalidation protocols under study are unaffected by the image format.
	Row rowstore.Row
	// ChangedCols lists schema column indexes modified by a CVUpdate; the
	// mining component records them in invalidation records.
	ChangedCols []uint16

	// HasIMCS is the specialized redo generation flag on CVCommit (§III.E):
	// whether the transaction modified any object enabled for IMCS
	// population.
	HasIMCS bool

	// Marker is the payload for CVMarker.
	Marker *Marker
}

// Obj returns the data object id the CV applies to.
func (cv *CV) Obj() rowstore.ObjID { return cv.DBA.Obj() }

// Record is one redo record: a set of change vectors made at the same SCN by
// one generating instance (redo thread).
type Record struct {
	SCN    scn.SCN
	Thread uint16 // generating primary instance id (RAC redo thread)
	CVs    []CV

	// OriginNS is the primary-side wall clock (UnixNano) at which the record
	// was emitted — for a commit record, the moment of commit. It rides the
	// wire as an optional tagged frame extension (see codec.go), so the
	// standby's freshness tracer can measure true commit-to-visible latency.
	// Zero means the origin timestamp was absent from the frame.
	OriginNS int64
}

// CommitSCN returns the commitSCN for a commit CV inside this record: by the
// paper's model, the commit CV's record SCN is the commitSCN.
func (r *Record) CommitSCN() scn.SCN { return r.SCN }
