package redo

import (
	"sync"

	"dbimadg/internal/scn"
)

// Stream is one redo thread's log: an SCN-ordered, append-only sequence of
// records. It doubles as the archived log — readers can (re-)attach at any
// position, which is how the standby resumes recovery after a restart
// (§III.E). Appends wake blocked readers.
type Stream struct {
	thread uint16

	mu     sync.Mutex
	cond   *sync.Cond
	recs   []*Record
	bytes  int64
	closed bool
}

// NewStream returns an empty stream for the given redo thread.
func NewStream(thread uint16) *Stream {
	s := &Stream{thread: thread}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Thread returns the generating instance (redo thread) id.
func (s *Stream) Thread() uint16 { return s.thread }

// Append adds a record to the log. Records must arrive in non-decreasing SCN
// order within a stream; Append panics otherwise, since out-of-order redo
// within a thread indicates a bug in redo generation.
func (s *Stream) Append(r *Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		panic("redo: append to closed stream")
	}
	if n := len(s.recs); n > 0 && r.SCN < s.recs[n-1].SCN {
		panic("redo: out-of-order append within a redo thread")
	}
	s.recs = append(s.recs, r)
	s.bytes += int64(EncodedSize(r))
	s.cond.Broadcast()
}

// Close marks the stream complete (primary shutdown); blocked readers drain
// and then see end-of-log.
func (s *Stream) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Len returns the number of archived records.
func (s *Stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Bytes returns the total encoded redo volume generated so far.
func (s *Stream) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// LastSCN returns the SCN of the newest record, or scn.Invalid when empty.
func (s *Stream) LastSCN() scn.SCN {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.recs) == 0 {
		return scn.Invalid
	}
	return s.recs[len(s.recs)-1].SCN
}

// At returns the record at position idx, blocking until it exists or the
// stream closes. ok is false at end-of-log.
func (s *Stream) At(idx int) (r *Record, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for idx >= len(s.recs) && !s.closed {
		s.cond.Wait()
	}
	if idx < len(s.recs) {
		return s.recs[idx], true
	}
	return nil, false
}

// TryAt is the non-blocking variant of At: ok is false when the record does
// not exist yet; eol is true when the stream is closed and drained.
func (s *Stream) TryAt(idx int) (r *Record, ok, eol bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < len(s.recs) {
		return s.recs[idx], true, false
	}
	return nil, false, s.closed
}

// IndexAtOrAfter returns the position of the first record with SCN >= target,
// for re-attaching a reader after a standby restart.
func (s *Stream) IndexAtOrAfter(target scn.SCN) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	lo, hi := 0, len(s.recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.recs[mid].SCN < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Reader is a cursor over a Stream.
type Reader struct {
	stream *Stream
	idx    int
}

// NewReader returns a reader positioned at record index idx.
func NewReader(s *Stream, idx int) *Reader {
	return &Reader{stream: s, idx: idx}
}

// NewReaderAtSCN returns a reader positioned at the first record with
// SCN >= target.
func NewReaderAtSCN(s *Stream, target scn.SCN) *Reader {
	return &Reader{stream: s, idx: s.IndexAtOrAfter(target)}
}

// Next returns the next record, blocking for more redo; ok is false at
// end-of-log (stream closed and drained).
func (r *Reader) Next() (*Record, bool) {
	rec, ok := r.stream.At(r.idx)
	if ok {
		r.idx++
	}
	return rec, ok
}

// TryNext is the non-blocking variant of Next.
func (r *Reader) TryNext() (rec *Record, ok, eol bool) {
	rec, ok, eol = r.stream.TryAt(r.idx)
	if ok {
		r.idx++
	}
	return rec, ok, eol
}

// Pos returns the reader's current record index.
func (r *Reader) Pos() int { return r.idx }
