package redo

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameChecksumBitFlip flips every byte of an encoded frame in turn and
// asserts ReadFrame never silently returns a record: body corruption must be
// a *ChecksumError, header corruption a length error or truncation.
func TestFrameChecksumBitFlip(t *testing.T) {
	frame := AppendFrame(nil, sampleRecord())
	if len(frame) < frameHeaderSize+1 {
		t.Fatalf("implausibly small frame: %d bytes", len(frame))
	}
	var checksumErrs int
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		rec, err := ReadFrame(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at offset %d went undetected (decoded SCN %d)", i, rec.SCN)
		}
		var ce *ChecksumError
		if errors.As(err, &ce) {
			checksumErrs++
			if ce.Want == ce.Got {
				t.Fatalf("offset %d: checksum error with matching sums: %v", i, err)
			}
		}
	}
	// Every body flip (frame minus the 8-byte header) must surface as a
	// checksum mismatch specifically — that is what gates the archived-log
	// refetch in the receiver.
	if want := len(frame) - frameHeaderSize; checksumErrs < want {
		t.Fatalf("only %d/%d body corruptions reported as ChecksumError", checksumErrs, want)
	}
}

// TestFrameTruncated chops an encoded frame at every possible length and
// asserts ReadFrame reports an error (unexpected EOF) rather than decoding a
// partial record.
func TestFrameTruncated(t *testing.T) {
	frame := AppendFrame(nil, sampleRecord())
	for n := 0; n < len(frame); n++ {
		_, err := ReadFrame(bytes.NewReader(frame[:n]))
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", n, len(frame))
		}
		if errors.Is(err, ErrEndOfLog) {
			t.Fatalf("truncation to %d bytes misread as end of log", n)
		}
	}
	// Zero bytes is a clean EOF (connection closed between frames).
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty reader: got %v, want io.EOF", err)
	}
}

// TestFrameChecksumRoundTrip checks a healthy frame still round-trips and
// that AppendFrame and WriteFrame produce identical bytes.
func TestFrameChecksumRoundTrip(t *testing.T) {
	r := sampleRecord()
	var buf bytes.Buffer
	n, err := WriteFrame(&buf, r)
	if err != nil {
		t.Fatal(err)
	}
	if app := AppendFrame(nil, r); !bytes.Equal(app, buf.Bytes()) || n != len(app) {
		t.Fatalf("WriteFrame and AppendFrame disagree (%d vs %d bytes)", n, len(app))
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SCN != r.SCN || len(got.CVs) != len(r.CVs) {
		t.Fatalf("round trip mangled record: %+v", got)
	}
}

// TestEOLSentinel verifies the header-only EOL frame still decodes as
// ErrEndOfLog under the checksummed format.
func TestEOLSentinel(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEOL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4 {
		t.Fatalf("EOL frame is %d bytes, want header-only 4", buf.Len())
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrEndOfLog) {
		t.Fatalf("got %v, want ErrEndOfLog", err)
	}
}
