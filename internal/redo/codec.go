package redo

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"dbimadg/internal/rowstore"
	"dbimadg/internal/scn"
)

// Wire format (all integers unsigned varints unless noted):
//
//	record  := scn thread nCV cv* ext*
//	cv      := kind txn tenant dba slot flags nChanged changed* row marker
//	row     := nNums num* nStrs str*          (nums are zig-zag varints)
//	str     := len bytes
//	marker  := len jsonBytes                  (only when kind == CVMarker)
//	ext     := tag(byte) len payload          (versioned record extensions)
//
// Extensions are the record format's versioning mechanism: each is a tagged,
// length-prefixed block appended after the CV list. A record without
// extensions is byte-identical to the pre-extension format, so old frames
// decode unchanged; a decoder that does not know a tag skips its payload by
// length, so new senders interoperate with older receivers. Tag zero is
// reserved (a zero byte there indicates corruption, not an extension).
//
// Records are framed on the wire as
//
//	frame := len(uint32 BE) crc(uint32 BE) body
//
// where crc is the CRC-32C (Castagnoli) checksum of body. ReadFrame verifies
// the checksum before decoding and returns a *ChecksumError on mismatch, so a
// receiver can tell a corrupted frame (refetch from the archived log) from a
// malformed record (a protocol bug). This is what the TCP redo transport
// ships.

// cvFlagHasIMCS marks a commit CV whose transaction touched an IMCS-enabled
// object.
const cvFlagHasIMCS = 1 << 0

// Record-extension tags (see the wire-format comment above). Tag 0 is
// reserved so a stray zero byte after the CV list reads as corruption.
const (
	// extOriginNS carries Record.OriginNS as a uvarint payload: the
	// primary-side emission wall clock consumed by the freshness tracer.
	extOriginNS byte = 1
)

// AppendRecord serializes r onto buf and returns the extended slice.
func AppendRecord(buf []byte, r *Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.SCN))
	buf = binary.AppendUvarint(buf, uint64(r.Thread))
	buf = binary.AppendUvarint(buf, uint64(len(r.CVs)))
	for i := range r.CVs {
		buf = appendCV(buf, &r.CVs[i])
	}
	if r.OriginNS > 0 {
		var payload [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(payload[:], uint64(r.OriginNS))
		buf = append(buf, extOriginNS)
		buf = binary.AppendUvarint(buf, uint64(n))
		buf = append(buf, payload[:n]...)
	}
	return buf
}

func appendCV(buf []byte, cv *CV) []byte {
	buf = append(buf, byte(cv.Kind))
	buf = binary.AppendUvarint(buf, uint64(cv.Txn))
	buf = binary.AppendUvarint(buf, uint64(cv.Tenant))
	buf = binary.AppendUvarint(buf, uint64(cv.DBA))
	buf = binary.AppendUvarint(buf, uint64(cv.Slot))
	var flags byte
	if cv.HasIMCS {
		flags |= cvFlagHasIMCS
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(cv.ChangedCols)))
	for _, c := range cv.ChangedCols {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(len(cv.Row.Nums)))
	for _, n := range cv.Row.Nums {
		buf = binary.AppendVarint(buf, n)
	}
	buf = binary.AppendUvarint(buf, uint64(len(cv.Row.Strs)))
	for _, s := range cv.Row.Strs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	if cv.Kind == CVMarker {
		payload, err := json.Marshal(cv.Marker)
		if err != nil {
			// Markers are built from plain structs; marshal cannot fail in
			// practice. Encode an empty payload defensively.
			payload = nil
		}
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}
	return buf
}

// decoder reads varint-encoded fields from a byte slice.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("redo: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("redo: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("redo: truncated byte at offset %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("redo: truncated bytes (%d wanted) at offset %d", n, d.off)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// DecodeRecord parses one record from buf (which must contain exactly one
// record, e.g. one transport frame).
func DecodeRecord(buf []byte) (*Record, error) {
	d := &decoder{buf: buf}
	r := &Record{
		SCN:    scn.SCN(d.uvarint()),
		Thread: uint16(d.uvarint()),
	}
	nCV := d.uvarint()
	if nCV > uint64(len(buf)) { // cheap sanity bound: every CV takes >= 1 byte
		return nil, fmt.Errorf("redo: implausible CV count %d", nCV)
	}
	if nCV > 0 {
		r.CVs = make([]CV, 0, nCV)
	}
	for i := uint64(0); i < nCV; i++ {
		cv, err := decodeCV(d)
		if err != nil {
			return nil, err
		}
		r.CVs = append(r.CVs, cv)
	}
	if d.err != nil {
		return nil, d.err
	}
	// Anything after the CV list is a sequence of tagged extensions; unknown
	// tags are skipped by length so newer senders stay decodable.
	for d.off < len(buf) {
		tag := d.byte()
		n := d.uvarint()
		payload := d.bytes(n)
		if d.err != nil {
			return nil, d.err
		}
		switch tag {
		case 0:
			return nil, fmt.Errorf("redo: reserved extension tag 0 at offset %d", d.off)
		case extOriginNS:
			v, k := binary.Uvarint(payload)
			if k <= 0 {
				return nil, fmt.Errorf("redo: bad origin-timestamp extension payload")
			}
			r.OriginNS = int64(v)
		default:
			// Unknown extension: skipped.
		}
	}
	return r, nil
}

func decodeCV(d *decoder) (CV, error) {
	var cv CV
	cv.Kind = CVKind(d.byte())
	cv.Txn = scn.TxnID(d.uvarint())
	cv.Tenant = rowstore.TenantID(d.uvarint())
	cv.DBA = rowstore.DBA(d.uvarint())
	cv.Slot = uint16(d.uvarint())
	flags := d.byte()
	cv.HasIMCS = flags&cvFlagHasIMCS != 0
	nChanged := d.uvarint()
	if d.err != nil {
		return cv, d.err
	}
	if nChanged > math.MaxUint16 {
		return cv, fmt.Errorf("redo: implausible changed-column count %d", nChanged)
	}
	if nChanged > 0 {
		cv.ChangedCols = make([]uint16, nChanged)
		for i := range cv.ChangedCols {
			cv.ChangedCols[i] = uint16(d.uvarint())
		}
	}
	nNums := d.uvarint()
	if d.err != nil {
		return cv, d.err
	}
	if nNums > math.MaxUint16 {
		return cv, fmt.Errorf("redo: implausible number-column count %d", nNums)
	}
	if nNums > 0 {
		cv.Row.Nums = make([]int64, nNums)
		for i := range cv.Row.Nums {
			cv.Row.Nums[i] = d.varint()
		}
	}
	nStrs := d.uvarint()
	if d.err != nil {
		return cv, d.err
	}
	if nStrs > math.MaxUint16 {
		return cv, fmt.Errorf("redo: implausible string-column count %d", nStrs)
	}
	if nStrs > 0 {
		cv.Row.Strs = make([]string, nStrs)
		for i := range cv.Row.Strs {
			n := d.uvarint()
			cv.Row.Strs[i] = string(d.bytes(n))
		}
	}
	if cv.Kind == CVMarker {
		n := d.uvarint()
		payload := d.bytes(n)
		if d.err != nil {
			return cv, d.err
		}
		if len(payload) > 0 {
			cv.Marker = new(Marker)
			if err := json.Unmarshal(payload, cv.Marker); err != nil {
				return cv, fmt.Errorf("redo: bad marker payload: %w", err)
			}
		}
	}
	return cv, d.err
}

// castagnoli is the CRC-32C table used for frame checksums; the same
// polynomial Oracle uses for redo block checking (and that modern CPUs
// accelerate).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is len(uint32) + crc(uint32).
const frameHeaderSize = 8

// ChecksumError reports a frame whose body failed CRC verification. The
// receiver treats it as transient corruption: drop the connection and refetch
// the record from the archived log (redial at LastSCN+1) rather than failing
// the apply pipeline.
type ChecksumError struct {
	Want, Got uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("redo: frame checksum mismatch (want %08x, got %08x)", e.Want, e.Got)
}

// AppendFrame serializes r as a complete wire frame (length, CRC-32C,
// body) onto buf and returns the extended slice.
func AppendFrame(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = AppendRecord(buf, r)
	body := buf[start+frameHeaderSize:]
	binary.BigEndian.PutUint32(buf[start:], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[start+4:], crc32.Checksum(body, castagnoli))
	return buf
}

// WriteFrame writes one length-prefixed, checksummed record to w.
func WriteFrame(w io.Writer, r *Record) (int, error) {
	frame := AppendFrame(nil, r)
	n, err := w.Write(frame)
	return n, err
}

// MaxFrameSize bounds a single record frame on the wire (16 MiB), protecting
// the reader from corrupt length prefixes.
const MaxFrameSize = 16 << 20

// eolFrame is the length-header sentinel marking a clean end of log. It is
// strictly greater than MaxFrameSize, so it can never be confused with a real
// frame. The explicit sentinel lets the receiver distinguish "the primary
// closed this redo thread" (stop pumping) from a dropped connection (redial
// and resume) — without it both look like io.EOF. The EOL frame is
// header-only: no CRC word, no body.
const eolFrame = 0xFFFFFFFF

// ErrEndOfLog is returned by ReadFrame when the sender signalled a clean end
// of the redo thread.
var ErrEndOfLog = fmt.Errorf("redo: end of log")

// WriteEOL writes the end-of-log sentinel frame to w.
func WriteEOL(w io.Writer) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], eolFrame)
	_, err := w.Write(hdr[:])
	return err
}

// ReadFrame reads one length-prefixed record from r and verifies its CRC-32C
// before decoding. It returns ErrEndOfLog when the sender wrote the
// end-of-log sentinel, and a *ChecksumError when the body does not match its
// checksum (the caller should refetch the record from the archived log).
func ReadFrame(r io.Reader) (*Record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == eolFrame {
		return nil, ErrEndOfLog
	}
	if n > MaxFrameSize {
		return nil, fmt.Errorf("redo: frame of %d bytes exceeds limit", n)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, err
	}
	want := binary.BigEndian.Uint32(crcBuf[:])
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, &ChecksumError{Want: want, Got: got}
	}
	return DecodeRecord(body)
}

// EncodedSize returns the wire size of a record (without the frame header);
// used to account redo volume for the log-advancement experiment (Fig. 11).
func EncodedSize(r *Record) int {
	return len(AppendRecord(nil, r))
}
