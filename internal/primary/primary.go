// Package primary implements the primary (production) database: one or more
// RAC instances sharing a row store, SCN clock and transaction table, each
// generating its own redo thread. It also hosts the DDL entry points that
// emit redo markers (§III.G) and the specialized redo generation at commit
// (§III.E).
package primary

import (
	"fmt"
	"sync"
	"time"

	"dbimadg/internal/redo"
	"dbimadg/internal/rowstore"
	"dbimadg/internal/scn"
	"dbimadg/internal/service"
	"dbimadg/internal/txn"
)

// Cluster is the primary database: shared state plus its RAC instances.
type Cluster struct {
	clock    *scn.Clock
	txns     *txn.Table
	db       *rowstore.Database
	ids      scn.TxnIDAllocator
	gate     sync.Mutex // commit gate: serializes commit publication with snapshots
	services *service.Registry
	// roles is the role set this cluster's node serves; a freshly created
	// primary is RolePrimary, a standby promoted by failover also keeps serving
	// its standby (reporting) services, so commit-time IMCS maintenance must
	// consider both roles when deciding whether an object is populated here.
	roles service.Role

	mu        sync.Mutex
	instances []*Instance
	hook      txn.DBIMHook
	hbStop    chan struct{}
	hbWG      sync.WaitGroup

	lastVacuum scn.SCN // horizon of the previous vacuum (for txn-table cleanup)
}

// NewCluster creates a primary database with n RAC instances. rowsPerBlock <=0
// selects the default block capacity.
func NewCluster(n int, rowsPerBlock int) *Cluster {
	if n < 1 {
		panic("primary: cluster needs at least one instance")
	}
	c := &Cluster{
		clock:    scn.NewClock(1), // SCN 1 is the frozen-version epoch; start above it
		txns:     txn.NewTable(),
		db:       rowstore.NewDatabase(rowsPerBlock),
		services: service.NewRegistry(),
		roles:    service.RolePrimary,
	}
	for i := 0; i < n; i++ {
		inst := newInstance(c, uint16(i+1))
		c.instances = append(c.instances, inst)
	}
	return c
}

// NewClusterFrom creates a primary cluster over an existing database: the row
// store, transaction table and service registry are adopted in place (no
// copy), and the SCN clock starts at startSCN so the first new commit SCN is
// startSCN+1. roles is the role set the node serves after the transition. The
// transaction-id allocator is seeded past every id the adopted table already
// holds, so new transactions can never collide with replicated ones. This is
// the promotion path: a failed-over standby's replica becomes the production
// database without rebuilding anything.
func NewClusterFrom(n int, db *rowstore.Database, txns *txn.Table, services *service.Registry, startSCN scn.SCN, roles service.Role) *Cluster {
	if n < 1 {
		panic("primary: cluster needs at least one instance")
	}
	if roles == 0 {
		roles = service.RolePrimary
	}
	c := &Cluster{
		clock:    scn.NewClock(startSCN),
		txns:     txns,
		db:       db,
		services: services,
		roles:    roles,
	}
	c.ids.Observe(txns.MaxID())
	for i := 0; i < n; i++ {
		inst := newInstance(c, uint16(i+1))
		c.instances = append(c.instances, inst)
	}
	return c
}

// Roles returns the role set this cluster's node serves.
func (c *Cluster) Roles() service.Role { return c.roles }

// SetDBIMHook installs the primary-side column-store maintenance hook. It
// must be set before transactional activity begins.
func (c *Cluster) SetDBIMHook(h txn.DBIMHook) {
	c.mu.Lock()
	c.hook = h
	c.mu.Unlock()
	for _, inst := range c.instances {
		inst.mgr.SetDBIMHook(h)
	}
}

// Clock returns the cluster-wide SCN clock.
func (c *Cluster) Clock() *scn.Clock { return c.clock }

// Txns returns the transaction table.
func (c *Cluster) Txns() *txn.Table { return c.txns }

// DB returns the shared row store / catalog.
func (c *Cluster) DB() *rowstore.Database { return c.db }

// Services returns the service registry.
func (c *Cluster) Services() *service.Registry { return c.services }

// Instances returns the RAC instances.
func (c *Cluster) Instances() []*Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Instance, len(c.instances))
	copy(out, c.instances)
	return out
}

// Instance returns instance i (0-based).
func (c *Cluster) Instance(i int) *Instance { return c.instances[i] }

// Snapshot acquires a Consistent Read snapshot for a query on the primary.
func (c *Cluster) Snapshot() scn.SCN {
	c.gate.Lock()
	s := c.clock.Current()
	c.gate.Unlock()
	return s
}

// Close ends redo generation on all instances (shutting down the primary);
// standby readers drain the remaining records. It also stops heartbeats.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.hbStop != nil {
		close(c.hbStop)
		c.hbStop = nil
	}
	c.mu.Unlock()
	c.hbWG.Wait()
	for _, inst := range c.Instances() {
		inst.stream.Close()
	}
}

// StartHeartbeats emits periodic empty redo records on every instance's
// thread. With RAC, the standby's log merger can only release a record once
// every other thread has advanced past its SCN, so a quiet instance would
// stall merging; heartbeats bound that stall (the role of Oracle's periodic
// redo on idle threads).
func (c *Cluster) StartHeartbeats(interval time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hbStop != nil {
		return
	}
	c.hbStop = make(chan struct{})
	stop := c.hbStop
	for _, inst := range c.instances {
		w := inst.writer
		c.hbWG.Add(1)
		go func() {
			defer c.hbWG.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					w.Emit(nil)
				}
			}
		}()
	}
}

// Vacuum prunes row version chains up to horizon and drops transaction-table
// entries that can no longer be referenced (those below the previous vacuum's
// horizon, whose versions are all pruned or frozen). The horizon must be <=
// the oldest snapshot any reader (primary query, standby shipping) still
// needs — callers typically pass the standby's applied SCN.
func (c *Cluster) Vacuum(horizon scn.SCN) (versionsFreed, txnsDropped int) {
	c.mu.Lock()
	prev := c.lastVacuum
	if horizon < prev {
		horizon = prev
	}
	c.lastVacuum = horizon
	c.mu.Unlock()
	versionsFreed = c.db.Vacuum(horizon, c.txns)
	if prev > 0 {
		txnsDropped = c.txns.Forget(prev)
	}
	return versionsFreed, txnsDropped
}

// Instance is one primary RAC instance: its redo thread and transaction
// manager. Sessions Begin transactions against an instance.
type Instance struct {
	cluster *Cluster
	thread  uint16
	stream  *redo.Stream
	writer  *LogWriter
	mgr     *txn.Manager
}

func newInstance(c *Cluster, thread uint16) *Instance {
	inst := &Instance{
		cluster: c,
		thread:  thread,
		stream:  redo.NewStream(thread),
	}
	inst.writer = &LogWriter{clock: c.clock, stream: inst.stream, thread: thread, gate: &c.gate}
	inst.mgr = txn.NewManager(c.clock, &c.ids, c.txns, inst.writer, c.hook, &policyView{c: c})
	inst.mgr.SetSegmentResolver(c.db.Segment)
	return inst
}

// Thread returns the instance's redo thread number.
func (i *Instance) Thread() uint16 { return i.thread }

// Stream returns the instance's redo log stream (shipped to the standby).
func (i *Instance) Stream() *redo.Stream { return i.stream }

// Cluster returns the owning cluster.
func (i *Instance) Cluster() *Cluster { return i.cluster }

// Begin starts a read-write transaction on this instance.
func (i *Instance) Begin() *txn.Txn { return i.mgr.Begin() }

// Manager returns the instance's transaction manager.
func (i *Instance) Manager() *txn.Manager { return i.mgr }

// LogWriter serializes redo emission for one redo thread and implements
// txn.RedoEmitter. The per-stream mutex is the redo allocation latch; the
// cluster-wide gate additionally serializes commit publication with snapshot
// acquisition so no reader can observe a torn commit.
type LogWriter struct {
	clock  *scn.Clock
	stream *redo.Stream
	thread uint16
	gate   *sync.Mutex

	mu sync.Mutex
}

// Emit implements txn.RedoEmitter. Every record is stamped with the
// primary-side wall clock at emission; the standby's freshness tracer reads
// the stamp off commit records to measure commit-to-visible latency.
func (w *LogWriter) Emit(cvs []redo.CV) scn.SCN {
	w.mu.Lock()
	s := w.clock.Next()
	w.stream.Append(&redo.Record{SCN: s, Thread: w.thread, CVs: cvs, OriginNS: time.Now().UnixNano()})
	w.mu.Unlock()
	return s
}

// EmitCommit implements txn.RedoEmitter.
func (w *LogWriter) EmitCommit(cvs []redo.CV, commitHook func(scn.SCN)) scn.SCN {
	w.gate.Lock()
	w.mu.Lock()
	s := w.clock.Next()
	w.stream.Append(&redo.Record{SCN: s, Thread: w.thread, CVs: cvs, OriginNS: time.Now().UnixNano()})
	if commitHook != nil {
		commitHook(s)
	}
	w.mu.Unlock()
	w.gate.Unlock()
	return s
}

// Snapshot implements txn.RedoEmitter.
func (w *LogWriter) Snapshot() scn.SCN {
	w.gate.Lock()
	s := w.clock.Current()
	w.gate.Unlock()
	return s
}

// policyView adapts the catalog's INMEMORY attributes and the service
// registry into the transaction manager's population policy.
type policyView struct {
	c *Cluster
}

func (p *policyView) enabled(obj rowstore.ObjID, role service.Role) bool {
	seg, ok := p.c.db.Segment(obj)
	if !ok {
		return false
	}
	tbl, err := p.c.db.Table(seg.Tenant(), seg.TableName())
	if err != nil {
		return false
	}
	part, err := tbl.PartitionByName(seg.PartName())
	if err != nil {
		return false
	}
	attr := part.InMemory()
	return attr.Enabled && p.c.services.RunsOn(attr.Service, role)
}

// EnabledPrimary implements txn.PopulationPolicy: is the object populated in
// a column store on THIS node? After a failover the node serves both roles,
// so standby-service objects count too — their retained IMCUs must keep
// receiving commit-time invalidations.
func (p *policyView) EnabledPrimary(obj rowstore.ObjID) bool {
	return p.enabled(obj, p.c.roles)
}

// EnabledStandby implements txn.PopulationPolicy.
func (p *policyView) EnabledStandby(obj rowstore.ObjID) bool {
	return p.enabled(obj, service.RoleStandby)
}

// --- DDL entry points -------------------------------------------------------

// CreateTable executes a CREATE TABLE on the cluster and ships the completed
// spec (with assigned object ids) to the standby as a redo marker.
func (i *Instance) CreateTable(spec *rowstore.TableSpec) (*rowstore.Table, error) {
	tbl, err := i.cluster.db.CreateTable(spec)
	if err != nil {
		return nil, err
	}
	i.writer.Emit([]redo.CV{{
		Kind: redo.CVMarker, Tenant: spec.Tenant,
		Marker: &redo.Marker{Kind: redo.MarkerCreateTable, Tenant: spec.Tenant, TableName: spec.Name, Spec: spec},
	}})
	return tbl, nil
}

// AlterInMemory sets the INMEMORY attribute of a table or one partition
// (partition == "" targets every partition) and emits the corresponding redo
// marker so the standby's population policies follow.
func (i *Instance) AlterInMemory(tenant rowstore.TenantID, table, partition string, attr rowstore.InMemoryAttr) error {
	tbl, err := i.cluster.db.Table(tenant, table)
	if err != nil {
		return err
	}
	if partition == "" {
		for _, p := range tbl.Partitions() {
			p.SetInMemory(attr)
		}
	} else {
		p, err := tbl.PartitionByName(partition)
		if err != nil {
			return err
		}
		p.SetInMemory(attr)
	}
	i.writer.Emit([]redo.CV{{
		Kind: redo.CVMarker, Tenant: tenant,
		Marker: &redo.Marker{Kind: redo.MarkerAlterInMemory, Tenant: tenant, TableName: table, Partition: partition, InMemory: &attr},
	}})
	return nil
}

// Truncate empties a table or one partition (partition == "" truncates all
// partitions and clears the identity index) and ships a marker; the standby
// replays the truncation physically and drops affected IMCUs.
func (i *Instance) Truncate(tenant rowstore.TenantID, table, partition string) error {
	tbl, err := i.cluster.db.Table(tenant, table)
	if err != nil {
		return err
	}
	var obj rowstore.ObjID
	if partition == "" {
		for _, p := range tbl.Partitions() {
			p.Seg.Truncate()
		}
		if idx := tbl.Index(); idx != nil {
			idx.Clear()
		}
	} else {
		p, err := tbl.PartitionByName(partition)
		if err != nil {
			return err
		}
		if tbl.Index() != nil {
			return fmt.Errorf("primary: partition-level truncate of indexed table %q not supported", table)
		}
		p.Seg.Truncate()
		obj = p.Seg.Obj()
	}
	i.writer.Emit([]redo.CV{{
		Kind: redo.CVMarker, Tenant: tenant,
		Marker: &redo.Marker{Kind: redo.MarkerTruncate, Tenant: tenant, TableName: table, Partition: partition, Obj: obj},
	}})
	return nil
}

// DropColumn performs a dictionary-level DROP COLUMN and ships a marker; the
// standby swaps its schema and drops the object's IMCUs at the next
// consistency point (§III.G).
func (i *Instance) DropColumn(tenant rowstore.TenantID, table, column string) error {
	tbl, err := i.cluster.db.Table(tenant, table)
	if err != nil {
		return err
	}
	newSchema, err := tbl.Schema().DropColumn(column)
	if err != nil {
		return err
	}
	tbl.SetSchema(newSchema)
	i.writer.Emit([]redo.CV{{
		Kind: redo.CVMarker, Tenant: tenant,
		Marker: &redo.Marker{Kind: redo.MarkerDropColumn, Tenant: tenant, TableName: table, Column: column},
	}})
	return nil
}
