package primary

import (
	"sync"
	"testing"

	"dbimadg/internal/redo"
	"dbimadg/internal/rowstore"
	"dbimadg/internal/scn"
	"dbimadg/internal/txn"
)

func wideSpec(tenant rowstore.TenantID) *rowstore.TableSpec {
	return &rowstore.TableSpec{
		Name:   "T",
		Tenant: tenant,
		Columns: []rowstore.Column{
			{Name: "id", Kind: rowstore.KindNumber},
			{Name: "n1", Kind: rowstore.KindNumber},
			{Name: "c1", Kind: rowstore.KindVarchar},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	}
}

func newRow(tbl *rowstore.Table, id, n1 int64, c1 string) rowstore.Row {
	s := tbl.Schema()
	r := rowstore.NewRow(s)
	r.Nums[s.Col(0).Slot()] = id
	r.Nums[s.Col(1).Slot()] = n1
	r.Strs[s.Col(2).Slot()] = c1
	return r
}

func TestInsertCommitVisible(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, err := inst.CreateTable(wideSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	tx := inst.Begin()
	if _, err := tx.Insert(tbl, newRow(tbl, 1, 100, "a")); err != nil {
		t.Fatal(err)
	}
	before := c.Snapshot()
	commitSCN, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if commitSCN <= before {
		t.Fatalf("commitSCN %d not after pre-commit snapshot %d", commitSCN, before)
	}
	seg := tbl.Segments()[0]
	if n := seg.RowCountVisible(before, c.Txns()); n != 0 {
		t.Fatalf("%d rows visible before commit", n)
	}
	if n := seg.RowCountVisible(c.Snapshot(), c.Txns()); n != 1 {
		t.Fatalf("%d rows visible after commit, want 1", n)
	}
}

func TestUpdateByIDAndIndex(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))
	tx := inst.Begin()
	for i := int64(0); i < 20; i++ {
		if _, err := tx.Insert(tbl, newRow(tbl, i, i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := inst.Begin()
	if err := tx2.UpdateByID(tbl, 7, []uint16{1}, func(r *rowstore.Row) {
		r.Nums[tbl.Schema().Col(1).Slot()] = 777
	}); err != nil {
		t.Fatal(err)
	}
	mid := c.Snapshot() // before commit: still old value
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	rid, _ := tbl.Index().Get(7)
	seg := tbl.Segments()[0]
	row, ok := seg.Block(rid.DBA.Block()).ReadRow(rid.Slot, mid, c.Txns(), scn.InvalidTxn)
	if !ok || row.Num(tbl.Schema(), 1) != 7 {
		t.Fatalf("pre-commit snapshot sees n1=%d, want 7", row.Num(tbl.Schema(), 1))
	}
	row, ok = seg.Block(rid.DBA.Block()).ReadRow(rid.Slot, c.Snapshot(), c.Txns(), scn.InvalidTxn)
	if !ok || row.Num(tbl.Schema(), 1) != 777 {
		t.Fatalf("post-commit snapshot sees n1=%d, want 777", row.Num(tbl.Schema(), 1))
	}
	if err := tx2.UpdateByID(tbl, 7, nil, nil); err != txn.ErrTxnDone {
		t.Fatalf("use after commit: %v, want ErrTxnDone", err)
	}
}

func TestAbortInvisible(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))
	tx := inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 1, 1, "a"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := tbl.Segments()[0].RowCountVisible(c.Snapshot(), c.Txns()); n != 0 {
		t.Fatalf("aborted insert visible: %d rows", n)
	}
	// Abort emitted a CVAbort record.
	stream := inst.Stream()
	last, _ := stream.At(stream.Len() - 1)
	if last.CVs[0].Kind != redo.CVAbort {
		t.Fatalf("last record kind = %v, want ABORT", last.CVs[0].Kind)
	}
}

func TestRedoShapePerTransaction(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))
	startLen := inst.Stream().Len() // skip the create-table marker
	tx := inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 1, 1, "a"))
	_ = tx.UpdateByID(tbl, 1, []uint16{1}, func(r *rowstore.Row) { r.Nums[1] = 2 })
	commitSCN, _ := tx.Commit()

	var kinds []redo.CVKind
	for i := startLen; i < inst.Stream().Len(); i++ {
		rec, _ := inst.Stream().At(i)
		for _, cv := range rec.CVs {
			kinds = append(kinds, cv.Kind)
		}
	}
	want := []redo.CVKind{redo.CVBegin, redo.CVInsert, redo.CVUpdate, redo.CVCommit}
	if len(kinds) != len(want) {
		t.Fatalf("CV kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("CV kinds = %v, want %v", kinds, want)
		}
	}
	// Commit CV record SCN is the commitSCN.
	last, _ := inst.Stream().At(inst.Stream().Len() - 1)
	if last.SCN != commitSCN {
		t.Fatalf("commit record SCN %d != commitSCN %d", last.SCN, commitSCN)
	}
	// Update CV carries the changed-column list and a full after-image.
	upd, _ := inst.Stream().At(inst.Stream().Len() - 2)
	cv := upd.CVs[0]
	if cv.Kind != redo.CVUpdate || len(cv.ChangedCols) != 1 || cv.ChangedCols[0] != 1 {
		t.Fatalf("update CV mangled: %+v", cv)
	}
	if cv.Row.Nums[1] != 2 {
		t.Fatalf("after-image n1 = %d, want 2", cv.Row.Nums[1])
	}
}

func TestHasIMCSFlag(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))

	// No INMEMORY policy: commit not flagged.
	tx := inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 1, 1, "a"))
	_, _ = tx.Commit()
	last, _ := inst.Stream().At(inst.Stream().Len() - 1)
	if last.CVs[0].HasIMCS {
		t.Fatal("commit flagged without INMEMORY policy")
	}

	// Standby-enabled policy: commit flagged.
	if err := inst.AlterInMemory(1, "T", "", rowstore.InMemoryAttr{Enabled: true, Service: "standby"}); err != nil {
		t.Fatal(err)
	}
	tx = inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 2, 2, "b"))
	_, _ = tx.Commit()
	last, _ = inst.Stream().At(inst.Stream().Len() - 1)
	if !last.CVs[0].HasIMCS {
		t.Fatal("commit not flagged for standby-enabled object")
	}

	// Primary-only policy: not standby-relevant, so not flagged.
	_ = inst.AlterInMemory(1, "T", "", rowstore.InMemoryAttr{Enabled: true, Service: "primary"})
	tx = inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 3, 3, "c"))
	_, _ = tx.Commit()
	last, _ = inst.Stream().At(inst.Stream().Len() - 1)
	if last.CVs[0].HasIMCS {
		t.Fatal("commit flagged for primary-only object")
	}
}

type captureHook struct {
	mu      sync.Mutex
	commits []scn.SCN
	changes int
}

func (h *captureHook) OnCommit(_ rowstore.TenantID, changes []txn.RowChange, commitSCN scn.SCN) {
	h.mu.Lock()
	h.commits = append(h.commits, commitSCN)
	h.changes += len(changes)
	h.mu.Unlock()
}

func TestDBIMHookFiresOnCommit(t *testing.T) {
	c := NewCluster(1, 8)
	hook := &captureHook{}
	c.SetDBIMHook(hook)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))
	_ = inst.AlterInMemory(1, "T", "", rowstore.InMemoryAttr{Enabled: true, Service: "both"})

	tx := inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 1, 1, "a"))
	_, _ = tx.Insert(tbl, newRow(tbl, 2, 2, "b"))
	commitSCN, _ := tx.Commit()
	if len(hook.commits) != 1 || hook.commits[0] != commitSCN || hook.changes != 2 {
		t.Fatalf("hook got %v/%d, want [%d]/2", hook.commits, hook.changes, commitSCN)
	}

	// Aborted transactions never reach the hook.
	tx = inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 3, 3, "c"))
	_ = tx.Abort()
	if len(hook.commits) != 1 {
		t.Fatal("hook fired for aborted transaction")
	}
}

func TestCommitAtomicityUnderConcurrentSnapshots(t *testing.T) {
	// A transaction updates two rows; concurrent readers taking snapshots
	// must never see exactly one of the two changes.
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))
	seed := inst.Begin()
	_, _ = seed.Insert(tbl, newRow(tbl, 0, 0, "a"))
	_, _ = seed.Insert(tbl, newRow(tbl, 1, 0, "a"))
	_, _ = seed.Commit()
	rid0, _ := tbl.Index().Get(0)
	rid1, _ := tbl.Index().Get(1)
	seg := tbl.Segments()[0]
	schema := tbl.Schema()

	stop := make(chan struct{})
	errs := make(chan string, 1)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Snapshot()
				v0, _ := seg.Block(rid0.DBA.Block()).ReadRow(rid0.Slot, snap, c.Txns(), scn.InvalidTxn)
				v1, _ := seg.Block(rid1.DBA.Block()).ReadRow(rid1.Slot, snap, c.Txns(), scn.InvalidTxn)
				if v0.Num(schema, 1) != v1.Num(schema, 1) {
					select {
					case errs <- "torn transaction observed":
					default:
					}
					return
				}
			}
		}()
	}
	for i := int64(1); i <= 300; i++ {
		tx := inst.Begin()
		val := i
		for _, id := range []int64{0, 1} {
			if err := tx.UpdateByID(tbl, id, []uint16{1}, func(r *rowstore.Row) {
				r.Nums[schema.Col(1).Slot()] = val
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestRACTwoThreadsShareClockAndData(t *testing.T) {
	c := NewCluster(2, 8)
	i1, i2 := c.Instance(0), c.Instance(1)
	tbl, _ := i1.CreateTable(wideSpec(1))

	tx1 := i1.Begin()
	_, _ = tx1.Insert(tbl, newRow(tbl, 1, 1, "a"))
	s1, _ := tx1.Commit()
	tx2 := i2.Begin()
	_, _ = tx2.Insert(tbl, newRow(tbl, 2, 2, "b"))
	s2, _ := tx2.Commit()
	if s2 <= s1 {
		t.Fatalf("cluster SCNs not shared: %d then %d", s1, s2)
	}
	if n := tbl.Segments()[0].RowCountVisible(c.Snapshot(), c.Txns()); n != 2 {
		t.Fatalf("rows visible across instances = %d, want 2", n)
	}
	if i1.Stream().Len() == 0 || i2.Stream().Len() == 0 {
		t.Fatal("each instance should write its own redo thread")
	}
	if i1.Stream().Thread() == i2.Stream().Thread() {
		t.Fatal("redo threads must differ")
	}
}

func TestDDLMarkers(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	spec := wideSpec(1)
	tbl, _ := inst.CreateTable(spec)

	tx := inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 1, 1, "a"))
	_, _ = tx.Commit()

	if err := inst.Truncate(1, "T", ""); err != nil {
		t.Fatal(err)
	}
	if n := tbl.Segments()[0].RowCountVisible(c.Snapshot(), c.Txns()); n != 0 {
		t.Fatal("truncate left visible rows")
	}
	if tbl.Index().Len() != 0 {
		t.Fatal("truncate left index entries")
	}
	if err := inst.DropColumn(1, "T", "n1"); err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().ColIndex("n1") != -1 {
		t.Fatal("column still present after drop")
	}
	// The stream carries create/truncate/drop markers.
	var kinds []redo.MarkerKind
	for i := 0; i < inst.Stream().Len(); i++ {
		rec, _ := inst.Stream().At(i)
		for _, cv := range rec.CVs {
			if cv.Kind == redo.CVMarker {
				kinds = append(kinds, cv.Marker.Kind)
			}
		}
	}
	want := []redo.MarkerKind{redo.MarkerCreateTable, redo.MarkerTruncate, redo.MarkerDropColumn}
	if len(kinds) != len(want) {
		t.Fatalf("marker kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("marker kinds = %v, want %v", kinds, want)
		}
	}
}

func TestVacuumAndForget(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))
	tx := inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 1, 0, "a"))
	_, _ = tx.Commit()
	for i := 0; i < 10; i++ {
		tx := inst.Begin()
		_ = tx.UpdateByID(tbl, 1, []uint16{1}, func(r *rowstore.Row) { r.Nums[1]++ })
		_, _ = tx.Commit()
	}
	horizon := c.Snapshot()
	freed, _ := c.Vacuum(horizon)
	if freed == 0 {
		t.Fatal("vacuum freed nothing")
	}
	// Second vacuum can forget transactions below the first horizon.
	tx2 := inst.Begin()
	_ = tx2.UpdateByID(tbl, 1, []uint16{1}, func(r *rowstore.Row) { r.Nums[1]++ })
	_, _ = tx2.Commit()
	_, dropped := c.Vacuum(c.Snapshot())
	if dropped == 0 {
		t.Fatal("forget dropped nothing")
	}
	// Data remains correct after vacuum+forget.
	rid, _ := tbl.Index().Get(1)
	row, ok := tbl.Segments()[0].Block(rid.DBA.Block()).ReadRow(rid.Slot, c.Snapshot(), c.Txns(), scn.InvalidTxn)
	if !ok || row.Num(tbl.Schema(), 1) != 11 {
		t.Fatalf("post-vacuum read: %v ok=%v, want n1=11", row.Num(tbl.Schema(), 1), ok)
	}
}

func TestRowLockConflictAcrossTxns(t *testing.T) {
	c := NewCluster(1, 8)
	inst := c.Instance(0)
	tbl, _ := inst.CreateTable(wideSpec(1))
	tx := inst.Begin()
	_, _ = tx.Insert(tbl, newRow(tbl, 1, 0, "a"))
	_, _ = tx.Commit()

	t1 := inst.Begin()
	if err := t1.UpdateByID(tbl, 1, nil, func(r *rowstore.Row) { r.Nums[1] = 1 }); err != nil {
		t.Fatal(err)
	}
	t2 := inst.Begin()
	err := t2.UpdateByID(tbl, 1, nil, func(r *rowstore.Row) { r.Nums[1] = 2 })
	if err != rowstore.ErrRowLocked {
		t.Fatalf("conflict err = %v, want ErrRowLocked", err)
	}
	_, _ = t1.Commit()
	// After commit the row is free.
	if err := t2.UpdateByID(tbl, 1, nil, func(r *rowstore.Row) { r.Nums[1] = 2 }); err != nil {
		t.Fatalf("update after unlock: %v", err)
	}
	_, _ = t2.Commit()
}
