package chaos

import (
	"encoding/json"
	"net"
	"os"
	"testing"
	"time"

	"dbimadg/internal/obs"
	"dbimadg/internal/primary"
	"dbimadg/internal/rac"
	"dbimadg/internal/rowstore"
	"dbimadg/internal/scn"
	"dbimadg/internal/standby"
	"dbimadg/internal/transport"
)

// stallRig is a minimal primary → TCP (scripted injector) → standby pipeline
// for targeted liveness tests, outside the randomized Runner.
type stallRig struct {
	pri      *primary.Cluster
	sc       *rac.StandbyCluster
	sby      *standby.Instance
	srv      *transport.Server
	injector *transport.FaultInjector
	rcv      *transport.Receiver
	tbl      *rowstore.Table
	stallCh  chan *obs.Bundle
}

func newStallRig(t *testing.T, deadline time.Duration) *stallRig {
	t.Helper()
	rig := &stallRig{pri: primary.NewCluster(1, rowsPerBlock)}
	cfg := standby.Config{
		RowsPerBlock:          rowsPerBlock,
		CheckpointInterval:    time.Millisecond,
		PopulationInterval:    time.Millisecond,
		BlocksPerIMCU:         blocksPerIMCU,
		WatchdogInterval:      10 * time.Millisecond,
		WatchdogStallDeadline: deadline,
	}
	rig.sc = rac.NewStandbyCluster(cfg, 0)
	rig.sby = rig.sc.Master

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	stream := rig.pri.Instance(0).Stream()
	rig.srv = transport.NewServer(ln, stream)
	rig.injector = transport.NewScriptedInjector() // all clean until a tail is set
	rig.srv.SetFaultInjector(rig.injector)
	rcv, err := transport.Connect(rig.srv.Addr(), []uint16{rig.pri.Instance(0).Thread()}, 0)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	rig.rcv = rcv
	rig.sc.Attach(rcv)
	rig.sby.SetShipFrontier(func() scn.SCN { return stream.LastSCN() })
	rig.stallCh = make(chan *obs.Bundle, 1)
	rig.sby.Watchdog().OnStall(func(b *obs.Bundle) {
		select {
		case rig.stallCh <- b:
		default:
		}
	})
	rig.sc.Start()
	t.Cleanup(func() {
		rig.sc.Stop()
		_ = rig.rcv.Close()
		_ = rig.srv.Close()
		rig.pri.Close()
	})

	tbl, err := rig.pri.Instance(0).CreateTable(&rowstore.TableSpec{
		Name:   "S1",
		Tenant: 1,
		Columns: []rowstore.Column{
			{Name: "id", Kind: rowstore.KindNumber},
			{Name: "n1", Kind: rowstore.KindNumber},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	})
	if err != nil {
		t.Fatalf("create table: %v", err)
	}
	rig.tbl = tbl
	return rig
}

func (rig *stallRig) insert(t *testing.T, from, to int64) {
	t.Helper()
	s := rig.tbl.Schema()
	tx := rig.pri.Instance(0).Begin()
	for i := from; i < to; i++ {
		row := rowstore.NewRow(s)
		row.Nums[s.Col(0).Slot()] = i
		row.Nums[s.Col(1).Slot()] = i % 10
		if _, err := tx.Insert(rig.tbl, row); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// TestWatchdogStallDetection wedges the transport with a scripted permanent
// outage (every frame past the script severs the connection) and requires the
// watchdog to declare a stall within the deadline — with a non-empty
// diagnostic bundle — instead of the pipeline hanging silently.
func TestWatchdogStallDetection(t *testing.T) {
	const deadline = 400 * time.Millisecond
	rig := newStallRig(t, deadline)

	// Healthy phase: rows ship and apply normally.
	rig.insert(t, 0, 64)
	if !rig.sby.WaitForSCN(rig.pri.Snapshot(), 10*time.Second) {
		t.Fatalf("standby never caught up during the healthy phase")
	}
	if n := rig.sby.Watchdog().Stalls(); n != 0 {
		t.Fatalf("healthy phase produced %d stall(s)", n)
	}

	// Permanent outage: every subsequent frame severs the connection, so the
	// committed rows below are never delivered no matter how often the
	// receiver redials.
	rig.injector.SetScriptTail(transport.FaultDrop)
	rig.insert(t, 64, 128)

	var bundle *obs.Bundle
	select {
	case bundle = <-rig.stallCh:
	case <-time.After(deadline + 5*time.Second):
		t.Fatalf("watchdog never fired: health=%+v", rig.sby.Watchdog().Health())
	}
	if bundle == nil {
		t.Fatalf("stall callback delivered a nil bundle")
	}
	if bundle.Reason == "" || len(bundle.Stages) == 0 {
		t.Fatalf("bundle missing verdict context: %+v", bundle)
	}
	stalled := ""
	for _, s := range bundle.Stages {
		if s.State == "stalled" {
			stalled = s.Stage
		}
	}
	if stalled != "ship" {
		t.Fatalf("expected the ship stage to stall, got %q (stages %+v)", stalled, bundle.Stages)
	}
	if bundle.Goroutines == "" {
		t.Fatalf("bundle has no goroutine profile")
	}
	if _, ok := bundle.State["transport"]; !ok {
		t.Fatalf("bundle has no transport state: %v", bundle.State)
	}
	if rig.sby.FlightRecorder().Len() == 0 {
		t.Fatalf("flight recorder retained no bundle")
	}
	if rep := rig.sby.Watchdog().Health(); rep.Verdict != "stalled" {
		t.Fatalf("health verdict = %q after a permanent outage", rep.Verdict)
	}
}

// TestDumpBundleWritesArtifact checks the CI artifact path: with
// CHAOS_ARTIFACT_DIR set, a failing run's bundle lands on disk as JSON
// carrying the replay seed; with it unset, nothing is written.
func TestDumpBundleWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("CHAOS_ARTIFACT_DIR", dir)
	r := &Runner{opts: Options{Seed: 42}}
	b := obs.NewFlightRecorder(nil, nil, 1).Capture("test stall", nil)

	path := r.dumpBundle(b)
	if path == "" {
		t.Fatal("dumpBundle wrote nothing with CHAOS_ARTIFACT_DIR set")
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("artifact unreadable: %v", err)
	}
	var doc struct {
		ReplaySeed int64       `json:"replay_seed"`
		Bundle     *obs.Bundle `json:"bundle"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.ReplaySeed != 42 || doc.Bundle == nil || doc.Bundle.Reason != "test stall" {
		t.Fatalf("artifact payload: seed=%d bundle=%+v", doc.ReplaySeed, doc.Bundle)
	}

	t.Setenv("CHAOS_ARTIFACT_DIR", "")
	if p := r.dumpBundle(b); p != "" {
		t.Fatalf("dumpBundle wrote %s with CHAOS_ARTIFACT_DIR unset", p)
	}
}

// TestWatchdogIdleNoFalsePositive holds a healthy but completely idle
// pipeline well past the stall deadline: every stage must report idle/ok,
// never stalled — an idle primary is not a wedge.
func TestWatchdogIdleNoFalsePositive(t *testing.T) {
	const deadline = 200 * time.Millisecond
	rig := newStallRig(t, deadline)
	rig.insert(t, 0, 32)
	if !rig.sby.WaitForSCN(rig.pri.Snapshot(), 10*time.Second) {
		t.Fatalf("standby never caught up")
	}
	time.Sleep(5 * deadline) // idle: no redo at all
	if n := rig.sby.Watchdog().Stalls(); n != 0 {
		t.Fatalf("idle pipeline produced %d stall(s): %+v", n, rig.sby.Watchdog().Health())
	}
	rep := rig.sby.Watchdog().Health()
	if rep.Verdict != "ok" {
		t.Fatalf("idle verdict = %q: %+v", rep.Verdict, rep)
	}
}
