package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbimadg/internal/primary"
	"dbimadg/internal/rac"
	"dbimadg/internal/rowstore"
	"dbimadg/internal/scanengine"
	"dbimadg/internal/scn"
	"dbimadg/internal/standby"
	"dbimadg/internal/testutil"
)

// oracle checks the harness's global invariants. Every check compares the
// system against an independent ground truth — the primary's row-store
// consistent read and the standby's own pure row-store scan — so a silent
// corruption anywhere in the mine/journal/flush/publish pipeline surfaces as
// a divergence here, not as a hang or a crash somewhere else.
type oracle struct {
	r      *Runner
	sbyTbl *rowstore.Table
}

// canonScan runs a full or filtered scan in deterministic RowID order and
// canonicalizes the result into a row-key string, so two scans are equal iff
// they returned exactly the same rows. Physical redo apply preserves block
// and slot addresses, so the primary CR and the standby agree on the order
// too — no re-sorting needed.
func canonScan(ex *scanengine.Executor, tbl *rowstore.Table, snap scn.SCN, filters ...scanengine.Filter) (string, int, error) {
	res, err := ex.Run(&scanengine.Query{Table: tbl, Filters: filters, OrderByRowID: true}, snap)
	if err != nil {
		return "", 0, err
	}
	s := tbl.Schema()
	keys := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		keys = append(keys, fmt.Sprintf("%d:%d:%s", row.Num(s, 0), row.Num(s, 1), row.Str(s, 2)))
	}
	return strings.Join(keys, ";"), len(res.Rows), nil
}

// canonGroups runs a grouped aggregate — GROUP BY c1 with COUNT(*), SUM,
// MIN and MAX over n1 — and canonicalizes the groups. Group order is already
// deterministic, so the strings compare directly.
func canonGroups(ex *scanengine.Executor, tbl *rowstore.Table, snap scn.SCN) (string, error) {
	res, err := ex.Run(&scanengine.Query{
		Table: tbl,
		Aggs: []scanengine.AggSpec{
			{Kind: scanengine.AggCount},
			{Kind: scanengine.AggSum, Col: 1},
			{Kind: scanengine.AggMin, Col: 1},
			{Kind: scanengine.AggMax, Col: 1},
		},
		GroupBy: []int{2},
	}, snap)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, len(res.Grouped.Groups))
	for _, g := range res.Grouped.Groups {
		parts = append(parts, fmt.Sprintf("%s=%d:%v", g.Keys[0], g.Count, g.Vals))
	}
	return strings.Join(parts, ";"), nil
}

// diffKeys renders a compact description of the rows present in one canonical
// scan but not the other, for failure messages.
func diffKeys(a, b string) string {
	in := func(s string) map[string]bool {
		m := map[string]bool{}
		for _, k := range strings.Split(s, ";") {
			if k != "" {
				m[k] = true
			}
		}
		return m
	}
	am, bm := in(a), in(b)
	var onlyA, onlyB []string
	for k := range am {
		if !bm[k] {
			onlyA = append(onlyA, k)
		}
	}
	for k := range bm {
		if !am[k] {
			onlyB = append(onlyB, k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	const cap = 8
	if len(onlyA) > cap {
		onlyA = append(onlyA[:cap], "...")
	}
	if len(onlyB) > cap {
		onlyB = append(onlyB[:cap], "...")
	}
	return fmt.Sprintf("only-in-first=%v only-in-second=%v", onlyA, onlyB)
}

func (o *oracle) table() (*rowstore.Table, error) {
	if o.sbyTbl != nil {
		return o.sbyTbl, nil
	}
	tbl, err := o.r.sby.DB().Table(1, "C101")
	if err != nil {
		return nil, err
	}
	o.sbyTbl = tbl
	return tbl, nil
}

// liveProbe runs the three-way equivalence check at whatever QuerySCN the
// standby currently publishes, while writers and apply keep running — the
// paper's central claim is exactly that a scan at a published QuerySCN is
// consistent without quiescing anything.
func (o *oracle) liveProbe() error {
	r := o.r
	q := r.sby.QuerySCN()
	if q == 0 {
		return nil // nothing published yet
	}
	tbl, err := o.table()
	if err != nil {
		return nil // replication of the CREATE TABLE marker still in flight
	}
	r.res.Checks++

	hybrid := r.newExec(r.sby.Txns(), r.sby.Store())
	pure := r.newExec(r.sby.Txns())
	pri := r.newExec(r.pri.Txns())

	h, _, err := canonScan(hybrid, tbl, q)
	if err != nil {
		return r.fail("live hybrid scan at %d: %v", q, err)
	}
	p, _, err := canonScan(pure, tbl, q)
	if err != nil {
		return r.fail("live row-store scan at %d: %v", q, err)
	}
	if h != p {
		return r.fail("live scans diverge at QuerySCN %d (hybrid vs standby row store): %s",
			q, diffKeys(h, p))
	}
	g, _, err := canonScan(pri, r.tbl, q)
	if err != nil {
		return r.fail("live primary CR scan at %d: %v", q, err)
	}
	if h != g {
		return r.fail("live scans diverge at QuerySCN %d (standby vs primary CR): %s",
			q, diffKeys(h, g))
	}
	return nil
}

// quiesceCheck runs the full invariant suite once the standby has caught up
// with the primary and no writer is in flight.
func (o *oracle) quiesceCheck() error {
	r := o.r
	tbl, err := o.table()
	if err != nil {
		return r.fail("standby table missing at quiesce: %v", err)
	}
	r.res.Checks++

	// (3) Journal / commit-table coherence: with every transaction resolved
	// and applied, both structures must drain (flush and QuerySCN advancement
	// run on millisecond timers, so poll briefly).
	if !testutil.WaitFor(10*time.Second, 0, func() bool {
		st := r.sby.Stats()
		return st.JournalTxns == 0 && st.CommitTablePend == 0
	}) {
		return r.fail("journal/commit table did not drain at quiesce: %+v", r.sby.Stats())
	}

	// Let population settle, then force one coverage scan so segment growth
	// since the last engine pass is accounted for.
	r.sby.Engine().Scan()
	if !r.sby.Engine().WaitIdle(20 * time.Second) {
		return r.fail("population did not settle at quiesce: %+v", r.sby.Engine().Stats())
	}

	// (1) Equivalence at the published QuerySCN, full scan: standby hybrid
	// (IMCS + SMU + journal + row store), standby pure row store, primary CR.
	q := r.sby.QuerySCN()
	hybrid := r.newExec(r.sby.Txns(), r.sby.Store())
	pure := r.newExec(r.sby.Txns())
	pri := r.newExec(r.pri.Txns())

	res, prof, err := hybrid.RunProfiled(&scanengine.Query{Table: tbl, OrderByRowID: true}, q)
	if err != nil {
		return r.fail("quiesce hybrid scan at %d: %v", q, err)
	}
	s := tbl.Schema()
	keys := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		keys = append(keys, fmt.Sprintf("%d:%d:%s", row.Num(s, 0), row.Num(s, 1), row.Str(s, 2)))
	}
	h := strings.Join(keys, ";")

	p, _, err := canonScan(pure, tbl, q)
	if err != nil {
		return r.fail("quiesce row-store scan at %d: %v", q, err)
	}
	if h != p {
		return r.fail("scans diverge at QuerySCN %d (hybrid vs standby row store): %s",
			q, diffKeys(h, p))
	}
	g, _, err := canonScan(pri, r.tbl, q)
	if err != nil {
		return r.fail("quiesce primary CR scan at %d: %v", q, err)
	}
	if h != g {
		return r.fail("scans diverge at QuerySCN %d (standby vs primary CR): %s",
			q, diffKeys(h, g))
	}

	// Profile cross-check: the four serving paths partition the result set,
	// and after population settled the IMCS must actually serve rows.
	sum := prof.RowsIMCS + prof.RowsInvalid + prof.RowsTail + prof.RowsRowStore
	if prof.ResultRows != sum {
		return r.fail("profile paths do not partition the result at %d: rows=%d imcs=%d invalid=%d tail=%d rowstore=%d",
			q, prof.ResultRows, prof.RowsIMCS, prof.RowsInvalid, prof.RowsTail, prof.RowsRowStore)
	}
	if prof.ResultRows != int64(len(res.Rows)) {
		return r.fail("profile result rows %d != scan rows %d", prof.ResultRows, len(res.Rows))
	}
	if prof.RowsIMCS == 0 {
		return r.fail("settled IMCS served no rows at %d (profile %+v, store %+v)",
			q, prof, r.sby.Store().Stats())
	}

	// Filtered and aggregate equivalence between the hybrid path and the
	// primary CR — predicates and pushed-down aggregates take different code
	// paths through the IMCU than full materialization.
	for _, color := range colors {
		fh, nh, err := canonScan(hybrid, tbl, q, scanengine.EqStr(2, color))
		if err != nil {
			return r.fail("filtered hybrid scan at %d: %v", q, err)
		}
		fg, ng, err := canonScan(pri, r.tbl, q, scanengine.EqStr(2, color))
		if err != nil {
			return r.fail("filtered primary scan at %d: %v", q, err)
		}
		if fh != fg {
			return r.fail("filtered scans (c1=%q) diverge at %d (%d vs %d rows): %s",
				color, q, nh, ng, diffKeys(fh, fg))
		}
	}
	ha, err := hybrid.Run(&scanengine.Query{Table: tbl, Agg: scanengine.AggSum, AggCol: 1}, q)
	if err != nil {
		return r.fail("hybrid SUM at %d: %v", q, err)
	}
	ga, err := pri.Run(&scanengine.Query{Table: r.tbl, Agg: scanengine.AggSum, AggCol: 1}, q)
	if err != nil {
		return r.fail("primary SUM at %d: %v", q, err)
	}
	if ha.Sum != ga.Sum {
		return r.fail("SUM(n1) diverges at %d: standby %d, primary %d", q, ha.Sum, ga.Sum)
	}

	// Grouped-aggregate equivalence: the hash GROUP BY folds encoded runs,
	// decoded batches and row-store fallbacks into per-group accumulators —
	// all three executors must emit identical groups, group for group.
	hg, err := canonGroups(hybrid, tbl, q)
	if err != nil {
		return r.fail("hybrid GROUP BY at %d: %v", q, err)
	}
	pg, err := canonGroups(pure, tbl, q)
	if err != nil {
		return r.fail("row-store GROUP BY at %d: %v", q, err)
	}
	if hg != pg {
		return r.fail("GROUP BY diverges at %d (hybrid vs standby row store): %q vs %q", q, hg, pg)
	}
	gg, err := canonGroups(pri, r.tbl, q)
	if err != nil {
		return r.fail("primary GROUP BY at %d: %v", q, err)
	}
	if hg != gg {
		return r.fail("GROUP BY diverges at %d (standby vs primary CR): %q vs %q", q, hg, gg)
	}

	// (4) IMCU coverage: every chunk of every segment must be covered by a
	// unit (populated or placeholder) after the engine settled.
	for _, part := range tbl.Partitions() {
		seg := part.Seg
		obj := seg.Obj()
		n := rowstore.BlockNo(seg.BlockCount())
		for start := rowstore.BlockNo(0); start < n; start += blocksPerIMCU {
			if _, ok := r.sby.Store().UnitForBlock(obj, start); !ok {
				return r.fail("coverage gap: obj %d block %d (of %d) has no unit after settle", obj, start, n)
			}
		}
	}

	// (5) Freshness-span completeness: every commit is traced (sample-every-1),
	// so with the pipeline quiescent at QuerySCN q no sampled commit span at or
	// below q may still be open, and no span may have closed with required
	// pipeline stages missing. Spans interrupted by a crash-restart are
	// explicitly truncated — counted, never leaked.
	return o.freshnessCheck(r.sby, q)
}

// freshnessCheck asserts the complete-span invariant on inst's tracer with
// every commit at or below published visible.
func (o *oracle) freshnessCheck(inst *standby.Instance, published scn.SCN) error {
	r := o.r
	ft := inst.Freshness()
	if ft == nil {
		return r.fail("freshness tracer not attached (chaos runs trace every commit)")
	}
	st := ft.Stats()
	if n := ft.OpenCommitsAtOrBelow(uint64(published)); n != 0 {
		return r.fail("freshness: %d sampled commit spans at or below published SCN %d never closed (%+v)",
			n, published, st)
	}
	if st.Incomplete != 0 {
		return r.fail("freshness: %d spans closed with required pipeline stages missing (%+v)",
			st.Incomplete, st)
	}
	if st.Completed == 0 {
		return r.fail("freshness: no span completed despite committed workload (%+v)", st)
	}
	for _, sp := range ft.Waterfalls(0) {
		if sp.State == "truncated" && sp.TruncatedWhy == "" {
			return r.fail("freshness: span %d truncated without a reason", sp.SCN)
		}
	}
	r.res.SpansCompleted = st.Completed
	r.res.SpansTruncated = st.Truncated
	return nil
}

// fleetCheck extends the quiesce oracle over the reader fleet: every reader
// must converge to the quiescent master's QuerySCN (they trail asynchronously,
// so this is a bounded wait, not an instant assertion), settle its population,
// and then serve exactly the standby row store's CR view — and the primary's —
// at its own published QuerySCN. Readers provisioned mid-storm must reach
// Ready by the final quiesce like any other.
func (o *oracle) fleetCheck() error {
	r := o.r
	tbl, err := o.table()
	if err != nil {
		return r.fail("standby table missing at fleet check: %v", err)
	}
	if !r.flt.WaitReady(20 * time.Second) {
		return r.fail("fleet did not settle at quiesce: %+v", r.flt.Stats())
	}
	target := r.sby.QuerySCN()
	pure := r.newExec(r.sby.Txns())
	pri := r.newExec(r.pri.Txns())
	for _, rd := range r.flt.Readers() {
		rd := rd
		if !testutil.WaitFor(20*time.Second, 0, func() bool { return rd.QuerySCN() >= target }) {
			return r.fail("fleet reader %d stuck at QuerySCN %d, master at %d (state %v, stats %+v)",
				rd.ID(), rd.QuerySCN(), target, rd.State(), r.flt.Stats())
		}
		rd.Engine().Scan()
		if !rd.Engine().WaitIdle(20 * time.Second) {
			return r.fail("fleet reader %d population did not settle", rd.ID())
		}
		q := rd.QuerySCN()
		hybrid := r.newExec(r.sby.Txns(), rd.Store())
		h, _, err := canonScan(hybrid, tbl, q)
		if err != nil {
			return r.fail("fleet reader %d hybrid scan at %d: %v", rd.ID(), q, err)
		}
		p, _, err := canonScan(pure, tbl, q)
		if err != nil {
			return r.fail("fleet row-store scan at %d: %v", q, err)
		}
		if h != p {
			return r.fail("fleet reader %d diverges from standby row store at QuerySCN %d: %s",
				rd.ID(), q, diffKeys(h, p))
		}
		g, _, err := canonScan(pri, r.tbl, q)
		if err != nil {
			return r.fail("fleet primary CR scan at %d: %v", q, err)
		}
		if h != g {
			return r.fail("fleet reader %d diverges from primary CR at QuerySCN %d: %s",
				rd.ID(), q, diffKeys(h, g))
		}
		if r.midAdded[rd.ID()] {
			delete(r.midAdded, rd.ID())
			r.res.FleetMidAddsReady++
		}
		r.res.FleetChecks++
	}
	return nil
}

// postPromotion validates a role transition: the promoted node's retained
// column store must agree with its row store, new DML must commit past the
// promotion SCN and stay consistent, and after a switchover the rebuilt
// standby must converge on the promoted node's state. It also releases the
// promoted-side resources.
func (o *oracle) postPromotion(newPri *primary.Cluster, promoted scn.SCN, newSb *rac.StandbyCluster) error {
	r := o.r
	master := r.sby
	pTbl, err := master.DB().Table(1, "C101")
	if err != nil {
		return r.fail("promoted table missing: %v", err)
	}
	if master.QuerySCN() != promoted {
		return r.fail("promoted QuerySCN %d != terminal recovery SCN %d", master.QuerySCN(), promoted)
	}
	if !master.Engine().WaitIdle(20 * time.Second) {
		return r.fail("post-promotion population did not settle")
	}
	r.res.Checks++

	hybrid := r.newExec(newPri.Txns(), master.Store())
	pure := r.newExec(newPri.Txns())
	check := func(when string) error {
		snap := newPri.Snapshot()
		h, _, err := canonScan(hybrid, pTbl, snap)
		if err != nil {
			return r.fail("%s hybrid scan: %v", when, err)
		}
		p, _, err := canonScan(pure, pTbl, snap)
		if err != nil {
			return r.fail("%s row-store scan: %v", when, err)
		}
		if h != p {
			return r.fail("%s: retained store diverges from row store at %d: %s",
				when, snap, diffKeys(h, p))
		}
		return nil
	}
	if err := check("post-promotion"); err != nil {
		return err
	}

	// Freshness spans survive the transition: terminal recovery published every
	// shipped commit and explicitly truncated the remainder, so the promoted
	// master's tracer must hold no open commit spans at or below the promotion
	// SCN and no gap-ridden completions.
	if err := o.freshnessCheck(master, promoted); err != nil {
		return err
	}

	// New DML on the promoted node: commits advance past the promotion SCN
	// and commit-time maintenance keeps the retained store consistent.
	s := pTbl.Schema()
	tx := newPri.Instance(0).Begin()
	for i := 0; i < 5; i++ {
		row := rowstore.NewRow(s)
		row.Nums[s.Col(0).Slot()] = r.nextID
		row.Nums[s.Col(1).Slot()] = 777
		row.Strs[s.Col(2).Slot()] = colors[int(r.nextID)%len(colors)]
		r.nextID++
		if _, err := tx.Insert(pTbl, row); err != nil {
			return r.fail("promoted insert: %v", err)
		}
	}
	commitSCN, err := tx.Commit()
	if err != nil {
		return r.fail("promoted commit: %v", err)
	}
	if commitSCN <= promoted {
		return r.fail("promoted commit SCN %d not past promotion SCN %d", commitSCN, promoted)
	}
	if err := check("post-promotion-DML"); err != nil {
		return err
	}

	// Switchover: the rebuilt standby applies the promoted node's redo and
	// converges on the same state.
	if newSb != nil {
		target := newPri.Snapshot()
		if !newSb.Master.WaitForSCN(target, 20*time.Second) {
			return r.fail("rebuilt standby stuck: QuerySCN=%d target=%d stats=%+v",
				newSb.Master.QuerySCN(), target, newSb.Master.Stats())
		}
		oldTbl, err := newSb.Master.DB().Table(1, "C101")
		if err != nil {
			return r.fail("rebuilt standby table missing: %v", err)
		}
		q2 := newSb.Master.QuerySCN()
		sbEx := r.newExec(newSb.Master.Txns(), newSb.Stores()...)
		a, _, err := canonScan(sbEx, oldTbl, q2)
		if err != nil {
			return r.fail("rebuilt standby scan: %v", err)
		}
		b, _, err := canonScan(pure, pTbl, q2)
		if err != nil {
			return r.fail("promoted CR scan at %d: %v", q2, err)
		}
		if a != b {
			return r.fail("rebuilt standby diverges from promoted node at %d: %s", q2, diffKeys(a, b))
		}
		// The rebuilt standby runs its own tracer from the promotion SCN on;
		// the post-promotion DML must have traced end-to-end through it too.
		if err := o.freshnessCheck(newSb.Master, q2); err != nil {
			return err
		}
		newSb.Stop()
	}
	master.Engine().Stop()
	newPri.Close()
	return nil
}

// monitor continuously samples the standby's published QuerySCN, asserting it
// never moves backwards (including across crash-restarts, whose checkpoint is
// at or above the last publication) and never runs ahead of the primary's SCN
// clock.
type monitor struct {
	r     *Runner
	stopC chan struct{}
	done  chan struct{}
	once  sync.Once

	// Restart bracketing: QuerySCN monotonicity is a per-incarnation
	// guarantee (every session dies with the instance), and a checkpoint
	// restore legitimately rolls the published QuerySCN back to the
	// checkpoint SCN while redo catch-up reapplies the gap. crashRestart
	// pauses sampling for the whole teardown-restore-restart window and the
	// epoch bump on resume resets the baseline; a sample that straddles the
	// window sees the epoch change and is discarded as unordered.
	epoch  atomic.Int64
	paused atomic.Bool

	mu        sync.Mutex
	violation error
}

// beginRestart suspends sampling for a planned crash-restart.
func (m *monitor) beginRestart() { m.paused.Store(true) }

// endRestart resumes sampling with a fresh monotonicity baseline.
func (m *monitor) endRestart() { m.epoch.Add(1); m.paused.Store(false) }

func startMonitor(r *Runner) *monitor {
	m := &monitor{r: r, stopC: make(chan struct{}), done: make(chan struct{})}
	go m.loop()
	return m
}

func (m *monitor) loop() {
	defer close(m.done)
	var lastQ scn.SCN
	var lastE int64
	for {
		select {
		case <-m.stopC:
			return
		default:
		}
		if m.paused.Load() {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		e := m.epoch.Load()
		q := m.r.sby.QuerySCN()
		if m.epoch.Load() != e {
			continue // a restart raced this sample; its value is unordered
		}
		if e != lastE {
			lastQ, lastE = 0, e // new incarnation: fresh monotonicity baseline
		}
		if q < lastQ {
			m.set(fmt.Errorf("QuerySCN moved backwards: %d -> %d", lastQ, q))
			return
		}
		lastQ = q
		// Read the primary clock after the QuerySCN: the clock is monotone, so
		// this orders the comparison safely.
		if bound := m.r.pri.Snapshot(); q > bound {
			m.set(fmt.Errorf("standby QuerySCN %d ran ahead of the primary clock %d", q, bound))
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (m *monitor) set(err error) {
	m.mu.Lock()
	m.violation = err
	m.mu.Unlock()
}

func (m *monitor) err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violation
}

func (m *monitor) stop() {
	m.once.Do(func() { close(m.stopC) })
	<-m.done
}
