package chaos

import (
	"flag"
	"strings"
	"testing"

	"dbimadg/internal/transport"
)

// Seed selection: every test derives its seeds deterministically from
// -chaos.seedbase, so a plain `go test` run is reproducible, CI can randomize
// by passing a different base, and a single failing seed replays with
// -chaos.seed. Failure messages always carry the seed (Runner.fail).
var (
	nSeeds   = flag.Int("chaos.seeds", 2, "seeds to run per chaos test variant")
	seedBase = flag.Int64("chaos.seedbase", 1, "base the per-test seeds are derived from")
	oneSeed  = flag.Int64("chaos.seed", -1, "replay exactly this seed (overrides -chaos.seeds)")
)

func seeds() []int64 {
	if *oneSeed >= 0 {
		return []int64{*oneSeed}
	}
	out := make([]int64, *nSeeds)
	for i := range out {
		out[i] = *seedBase + int64(i)*7919
	}
	return out
}

// runSeed executes one chaos run and fails the test with the seed on any
// invariant violation.
func runSeed(t *testing.T, opts Options) *Result {
	t.Helper()
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("replay with -chaos.seed %d: %v", opts.Seed, err)
	}
	if res.Checks == 0 {
		t.Fatalf("seed %d: no oracle check ran", opts.Seed)
	}
	if res.Stalls != 0 {
		t.Fatalf("seed %d: watchdog reported %d stall(s) in a passing run (false positive)",
			opts.Seed, res.Stalls)
	}
	return res
}

// TestChaosInProc storms the in-process pipeline: concurrent writers, live
// probes, crash-restarts, quiesce oracles.
func TestChaosInProc(t *testing.T) {
	for _, seed := range seeds() {
		res := runSeed(t, Options{Seed: seed, Steps: 12, CrashRestarts: true})
		t.Logf("seed %d: %d checks, %d restarts", seed, res.Checks, res.Restarts)
	}
}

// TestChaosTCPFaults storms the TCP transport with the full fault mix (drop,
// truncate, delay, duplicate, reorder, CRC corruption) plus connection mass
// drops and crash-restarts that re-attach at the checkpoint.
func TestChaosTCPFaults(t *testing.T) {
	for _, seed := range seeds() {
		res := runSeed(t, Options{
			Seed:          seed,
			Steps:         10,
			UseTCP:        true,
			ReorderWindow: 4,
			CrashRestarts: true,
		})
		t.Logf("seed %d: %d checks, %d restarts, %d reconnects, faults %v",
			seed, res.Checks, res.Restarts, res.Reconnects, res.FaultCounts)
	}
}

// highPressureSeeds are always in the high-pressure regression set, on top of
// the -chaos.seedbase-derived seed. Seed 4000 is the sustained-fault-churn
// schedule that once livelocked the receiver: connections died every 2-3
// frames, the reorder window was discarded on every error (so delivered
// records never accumulated into a release), and backoff escalated to its cap
// during dedup-only recovery stretches. It pins the persistent-window and
// backoff-reset fixes in transport.Receiver.
var highPressureSeeds = []int64{4000}

// TestChaosHighPressure cranks the fault probabilities far above the default
// plan — most frames are faulted — and still expects full convergence.
func TestChaosHighPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("high-pressure run skipped in -short mode")
	}
	run := seeds()
	if *oneSeed < 0 {
		run = append(run[:1:1], highPressureSeeds...)
	}
	for _, seed := range run {
		res := runSeed(t, Options{
			Seed:   seed,
			Steps:  8,
			UseTCP: true,
			Faults: &transport.FaultPlan{
				DropProb:    0.05,
				PartialProb: 0.05,
				DelayProb:   0.20,
				DupProb:     0.15,
				ReorderProb: 0.15,
				CorruptProb: 0.05,
			},
			ReorderWindow: 4,
		})
		if res.Reconnects == 0 {
			t.Fatalf("seed %d: high-pressure plan never forced a reconnect", seed)
		}
		t.Logf("seed %d: %d checks, %d reconnects, %d corrupt, %d dups, faults %v",
			seed, res.Checks, res.Reconnects, res.Corrupt, res.Duplicates, res.FaultCounts)
	}
}

// TestChaosFleetChurn storms the pipeline while reader-fleet membership
// churns: readers are provisioned and drained as schedule steps, every
// quiesce point checks each reader's scan at its own QuerySCN three ways
// (reader hybrid, standby row store, primary CR), and at least one reader
// added mid-storm must reach Ready and pass the equivalence check.
func TestChaosFleetChurn(t *testing.T) {
	for _, seed := range seeds() {
		res := runSeed(t, Options{Seed: seed, Steps: 12, FleetChurn: true})
		if res.FleetChecks == 0 {
			t.Fatalf("seed %d: no fleet reader equivalence check ran", seed)
		}
		if res.FleetMidAddsReady == 0 {
			t.Fatalf("seed %d: no mid-run-added reader verified Ready (churns=%d adds=%d)",
				seed, res.FleetChurns, res.FleetMidAdds)
		}
		t.Logf("seed %d: %d checks (%d fleet), %d churns, %d mid-adds (%d verified Ready), final size %d",
			seed, res.Checks, res.FleetChecks, res.FleetChurns, res.FleetMidAdds,
			res.FleetMidAddsReady, res.FleetReaders)
	}
}

// TestChaosFleetChurnTCPRestarts layers fleet churn over the faulted TCP
// transport with standby crash-restarts: readers survive the master's crash
// (their stores are fleet-local), re-attach to the restarted flusher's
// fanout, and still pass per-reader equivalence at every quiesce.
func TestChaosFleetChurnTCPRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet churn over faulted TCP skipped in -short mode")
	}
	seed := seeds()[0]
	res := runSeed(t, Options{
		Seed:          seed,
		Steps:         10,
		UseTCP:        true,
		ReorderWindow: 4,
		CrashRestarts: true,
		FleetChurn:    true,
	})
	if res.FleetChecks == 0 || res.FleetMidAddsReady == 0 {
		t.Fatalf("seed %d: fleet oracle under-ran: %+v", seed, res)
	}
	t.Logf("seed %d: %d fleet checks, %d restarts, %d reconnects, %d churns",
		seed, res.FleetChecks, res.Restarts, res.Reconnects, res.FleetChurns)
}

// TestChaosCheckpoints storms the pipeline with IMCS snapshots on: a fast
// background checkpointer plus scheduled explicit checkpoints, crashes racing
// an in-flight checkpoint, and seeded snapshot corruption. Every seed ends
// with a forced checkpoint → churn → crash-restart, so the final quiesce
// point always runs the three-way equivalence oracle over a store that came
// back via snapshot-restore + redo catch-up.
func TestChaosCheckpoints(t *testing.T) {
	for _, seed := range seeds() {
		res := runSeed(t, Options{Seed: seed, Steps: 12, CrashRestarts: true, Checkpoints: true})
		if res.CheckpointRestores == 0 {
			t.Fatalf("seed %d: no restart restored from a checkpoint (%d written, %d fallbacks)",
				seed, res.Checkpoints, res.CheckpointFallbacks)
		}
		t.Logf("seed %d: %d checks, %d restarts, %d checkpoints, %d restores, %d fallbacks, %d corrupted",
			seed, res.Checks, res.Restarts, res.Checkpoints,
			res.CheckpointRestores, res.CheckpointFallbacks, res.SnapshotsCorrupted)
	}
}

// TestChaosCheckpointsTCP layers the snapshot hazards over the faulted TCP
// transport: restart redials land at the checkpoint SCN + 1 (ResumePoint), so
// the archived-log window the restore needs survives the reconnect storm.
func TestChaosCheckpointsTCP(t *testing.T) {
	for _, seed := range seeds() {
		res := runSeed(t, Options{
			Seed:          seed,
			Steps:         10,
			UseTCP:        true,
			ReorderWindow: 4,
			CrashRestarts: true,
			Checkpoints:   true,
		})
		if res.CheckpointRestores == 0 {
			t.Fatalf("seed %d: no restart restored from a checkpoint (%d written, %d fallbacks)",
				seed, res.Checkpoints, res.CheckpointFallbacks)
		}
		t.Logf("seed %d: %d checks, %d restarts, %d reconnects, %d checkpoints, %d restores, %d fallbacks, %d corrupted",
			seed, res.Checks, res.Restarts, res.Reconnects, res.Checkpoints,
			res.CheckpointRestores, res.CheckpointFallbacks, res.SnapshotsCorrupted)
	}
}

// TestChaosFailover runs the storm over TCP and then fails over under load:
// the standby is promoted while redo is still in flight and its retained
// store must agree with the row store, before and after new DML.
func TestChaosFailover(t *testing.T) {
	seed := seeds()[0]
	res := runSeed(t, Options{
		Seed:          seed,
		Steps:         6,
		UseTCP:        true,
		ReorderWindow: 4,
		Transition:    TransitionFailover,
	})
	if res.Transition != "failover" {
		t.Fatalf("seed %d: transition = %q", seed, res.Transition)
	}
}

// TestChaosSwitchover swaps roles under load and requires the rebuilt standby
// to converge on the promoted node's state.
func TestChaosSwitchover(t *testing.T) {
	seed := seeds()[0]
	res := runSeed(t, Options{
		Seed:       seed,
		Steps:      6,
		Transition: TransitionSwitchover,
	})
	if res.Transition != "switchover" {
		t.Fatalf("seed %d: transition = %q", seed, res.Transition)
	}
}

// TestChaosMutationSelfTest proves the oracle has teeth: with the miner's
// journal-skip bug armed (one invalidation record silently dropped), the
// equivalence check MUST report a divergence — and without the bug, the same
// schedule must pass. A harness whose oracle cannot catch a planted lost
// invalidation would green-light real ones.
func TestChaosMutationSelfTest(t *testing.T) {
	seed := seeds()[0]
	if _, err := Run(Options{Seed: seed, Steps: 0}); err != nil {
		t.Fatalf("clean baseline failed (replay with -chaos.seed %d): %v", seed, err)
	}
	_, err := Run(Options{Seed: seed, Steps: 0, MutateSkipJournal: 1})
	if err == nil {
		t.Fatalf("seed %d: oracle missed the planted lost-invalidation bug", seed)
	}
	if !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("seed %d: planted bug surfaced as the wrong failure: %v", seed, err)
	}
	t.Logf("seed %d: planted bug detected: %v", seed, err)
}
