// Package chaos is a deterministic, seed-driven fault-injection harness for
// the whole redo/IMCS pipeline. A Runner drives a primary+standby cluster
// through a randomized schedule of concurrent OLTP writer bursts, standby
// scans, transport faults (drop/truncate/delay/duplicate/reorder/corrupt, via
// transport.FaultInjector), standby crash-restarts, and optional role
// transitions — and after every quiesce point checks global invariants
// against a primary-side oracle (see oracle.go):
//
//  1. equivalence — the standby's hybrid IMCS scan at QuerySCN s is
//     byte-identical to a pure row-store CR scan and to the primary's
//     consistent read at s, across the imcs/invalid/tail/rowstore paths
//     (cross-checked against scanengine.Profile's path accounting);
//  2. QuerySCN monotonicity and SCN coherence (QuerySCN <= watermark <=
//     dispatch frontier), sampled continuously by a monitor goroutine;
//  3. journal / commit-table coherence — both drain to zero once the standby
//     has caught up with no transactions in flight;
//  4. IMCU coverage — after population settles, every chunk of every
//     IMCS-enabled segment is covered by exactly one unit.
//
// Every random decision derives from Options.Seed, so a failure replays
// exactly (schedule and fault plan; goroutine interleaving still varies, so a
// replay reproduces the same pressure, not the same instruction trace). A
// failed run's error message carries the seed.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dbimadg/internal/broker"
	"dbimadg/internal/checkpoint"
	"dbimadg/internal/fleet"
	"dbimadg/internal/imcs"
	"dbimadg/internal/obs"
	"dbimadg/internal/primary"
	"dbimadg/internal/rac"
	"dbimadg/internal/redo"
	"dbimadg/internal/rowstore"
	"dbimadg/internal/scanengine"
	"dbimadg/internal/scn"
	"dbimadg/internal/standby"
	"dbimadg/internal/transport"
)

// TransitionMode selects the optional role transition exercised at the end of
// a run, while redo may still be in flight.
type TransitionMode int

const (
	// TransitionNone runs no role transition.
	TransitionNone TransitionMode = iota
	// TransitionFailover promotes the standby after closing the primary.
	TransitionFailover
	// TransitionSwitchover swaps roles and rebuilds the old primary as the
	// new standby.
	TransitionSwitchover
)

// Options configures one chaos run. The zero value is usable: in-process
// transport, no crash-restarts, no transition — faults come only from the
// schedule's interleavings.
type Options struct {
	// Seed drives every random decision (schedule, fault plan, workload).
	Seed int64
	// Steps is the number of schedule steps (default 20).
	Steps int
	// UseTCP ships redo over TCP with a seeded FaultInjector on the server.
	UseTCP bool
	// Faults overrides the default fault plan (TCP only).
	Faults *transport.FaultPlan
	// ReorderWindow sets the receiver's resequencing window (TCP only).
	// Below 2, reorder injection is disabled (it would be unsound).
	ReorderWindow int
	// CrashRestarts enables standby crash-restart steps.
	CrashRestarts bool
	// Transition selects the end-of-run role transition.
	Transition TransitionMode
	// MutateSkipJournal > 0 arms the miner's lost-invalidation bug (the next
	// n invalidation records are dropped) before a targeted single-row
	// update. The harness self-test uses this to prove the oracle has teeth.
	MutateSkipJournal int64
	// ScanMorselRows pins the oracle executors' morsel granule; 0 draws a
	// seed-derived size from a boundary-adjacent sweep (1, unit-1, unit,
	// unit+1, multi-unit), so every equivalence check also exercises the
	// work-stealing scan scheduler at awkward morsel boundaries.
	ScanMorselRows int
	// ScanParallel pins the oracle executors' worker count; 0 draws a
	// seed-derived parallelism in [1, 8]; negative forces serial.
	ScanParallel int
	// FleetChurn attaches a reader fleet to the standby and adds/removes
	// readers as schedule steps while writers and faults run. Every quiesce
	// point then also checks each caught-up fleet reader's scan at its own
	// QuerySCN against the standby row store and the primary CR (the same
	// three-way equivalence the master gets), and the run fails unless every
	// reader provisioned mid-storm reaches Ready by the final quiesce.
	FleetChurn bool
	// Checkpoints enables IMCS snapshots (a per-run temp SnapshotDir with a
	// fast background checkpointer) and deals checkpoint schedule steps:
	// explicit checkpoints, crashes racing an in-flight checkpoint, and
	// seeded corruption of the newest snapshot file (the next restart must
	// detect it and fall back to the full rebuild). The run always ends with
	// a forced checkpoint → churn → crash-restart sequence so every seed
	// exercises the restore path before the final quiesce oracle.
	Checkpoints bool
}

// Result summarizes a successful run.
type Result struct {
	Seed        int64
	Steps       int
	Checks      int // oracle checks that ran (live probes + quiesce points)
	Restarts    int
	FaultCounts map[string]int64 // injected transport faults by kind
	Reconnects  int64
	Corrupt     int64 // frames rejected by CRC and refetched
	Duplicates  int64 // duplicate records dropped by the receiver
	Stalls      int64 // watchdog stall onsets (a passing run must report 0)
	Transition  string
	// Freshness-span accounting (sample-every-1 tracing is on for every chaos
	// run): spans that closed complete vs. spans explicitly truncated by a
	// crash-restart or role transition. The oracle fails the run if any span
	// leaks or closes with missing stages.
	SpansCompleted uint64
	SpansTruncated uint64
	// Fleet-churn accounting (FleetChurn runs only): membership changes dealt
	// by the schedule, readers provisioned after the storm began, and
	// per-reader equivalence checks that ran.
	FleetChurns  int
	FleetMidAdds int
	// FleetMidAddsReady counts mid-storm-added readers verified Ready and
	// scan-equivalent at a quiesce point; a fleet-churn run fails unless at
	// least one is (the harness forces an add before the final quiesce).
	FleetMidAddsReady int
	FleetChecks       int
	FleetReaders      int // final membership
	// Scan tuning the oracle executors ran with (seed-derived unless pinned
	// in Options): the morsel granule and worker count every equivalence
	// check exercised.
	ScanMorselRows int
	ScanParallel   int
	// Checkpoint accounting (Checkpoints runs only): snapshots written
	// (background + explicit), restarts that restored from one, restarts
	// that fell back to a full rebuild, and snapshot files the schedule
	// deliberately corrupted.
	Checkpoints         int64
	CheckpointRestores  int64
	CheckpointFallbacks int64
	SnapshotsCorrupted  int
}

// rowsPerBlock / base workload shape: small blocks and IMCUs so a modest row
// count spans many units, exercising population, invalidation and tail scans.
const (
	rowsPerBlock  = 32
	blocksPerIMCU = 8
	baseRows      = 256
)

// writerOp is one precomputed transaction for a writer goroutine. All
// randomness is drawn on the scheduler goroutine, so the workload script is a
// pure function of the seed.
type writerOp struct {
	updates []int64 // ids to update (disjoint across concurrent writers)
	marker  int64   // value written to n1
	inserts []int64 // fresh ids to insert
	deletes []int64 // existing ids to delete (owned by this writer)
	abort   bool    // abort instead of commit (abort ops never insert/delete)
}

// Runner owns the cluster under test and the seeded schedule.
type Runner struct {
	opts Options
	rng  *rand.Rand

	pri *primary.Cluster
	sc  *rac.StandbyCluster
	sby *standby.Instance
	tbl *rowstore.Table

	// transport wiring: curSource is whatever redo source currently feeds the
	// standby (an InProc pump or the TCP receiver); srv/injector/rcv are set
	// only in TCP mode.
	curSource transport.Source
	srv       *transport.Server
	injector  *transport.FaultInjector
	rcv       *transport.Receiver
	threads   []uint16

	oracle  *oracle
	monitor *monitor
	stallCh chan *obs.Bundle // watchdog stall onsets (fail-fast in quiesceCatchUp)

	// fleet churn (Options.FleetChurn): the reader fleet under membership
	// storm, and the ids of readers provisioned after the base state settled
	// (each must reach Ready by the final quiesce).
	flt       *fleet.Manager
	midAdded  map[int]bool
	fleetSize int

	// ckptDir is the run's snapshot directory (Options.Checkpoints only),
	// removed at teardown.
	ckptDir string

	nextID  int64   // fresh-id allocator for inserts
	liveIDs []int64 // committed inserted ids eligible for deletion

	// scan tuning applied to every oracle executor (see Options and newExec).
	scanMorselRows int
	scanParallel   int

	res Result
}

// resolveScanTuning fixes the run's scan-executor knobs from the options or,
// when unset, from the seed. The morsel sweep brackets the unit size
// (rowsPerBlock*blocksPerIMCU rows) so boundary arithmetic — clipping a
// batch-aligned window, single-row morsels, morsels spanning units — is under
// the same randomized schedule as the pipeline faults.
func (r *Runner) resolveScanTuning() {
	const unitRows = rowsPerBlock * blocksPerIMCU
	sweep := []int{1, unitRows - 1, unitRows, unitRows + 1, 3 * unitRows, scanengine.DefaultMorselRows}
	switch {
	case r.opts.ScanMorselRows != 0:
		r.scanMorselRows = r.opts.ScanMorselRows
	default:
		r.scanMorselRows = sweep[r.rng.Intn(len(sweep))]
	}
	switch {
	case r.opts.ScanParallel > 0:
		r.scanParallel = r.opts.ScanParallel
	case r.opts.ScanParallel < 0:
		r.scanParallel = 1
	default:
		r.scanParallel = 1 + r.rng.Intn(8)
	}
	r.res.ScanMorselRows = r.scanMorselRows
	r.res.ScanParallel = r.scanParallel
}

// newExec builds an oracle executor carrying the run's scan tuning, so every
// equivalence check doubles as a differential test of the morsel scheduler.
func (r *Runner) newExec(view rowstore.TxnView, stores ...*imcs.Store) *scanengine.Executor {
	ex := scanengine.NewExecutor(view, stores...)
	ex.MorselRows = r.scanMorselRows
	ex.DefaultParallel = r.scanParallel
	return ex
}

// Run executes one seeded chaos run and returns its summary, or an error
// naming the violated invariant and the seed to replay it.
func Run(opts Options) (*Result, error) {
	if opts.Steps <= 0 {
		opts.Steps = 20
	}
	r := &Runner{
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		nextID: 1_000_000, // far above the base rows; never collides
		res:    Result{Seed: opts.Seed, Steps: opts.Steps},
	}
	r.resolveScanTuning()
	if err := r.setup(); err != nil {
		r.teardown()
		return nil, r.fail("setup: %v", err)
	}
	err := r.run()
	if err == nil {
		err = r.transition()
	}
	r.teardown()
	if err != nil {
		return nil, err
	}
	r.collectCounters()
	return &r.res, nil
}

// fail wraps an invariant violation with the replay seed.
func (r *Runner) fail(format string, args ...any) error {
	return fmt.Errorf("chaos seed %d: %s", r.opts.Seed, fmt.Sprintf(format, args...))
}

// defaultPlan is the moderate per-frame fault mix used when Options.Faults is
// nil: enough pressure to exercise every recovery path while redo still
// flows.
func (r *Runner) defaultPlan() transport.FaultPlan {
	return transport.FaultPlan{
		DropProb:    0.01,
		PartialProb: 0.01,
		DelayProb:   0.05,
		DupProb:     0.04,
		ReorderProb: 0.04,
		CorruptProb: 0.01,
		MaxDelay:    2 * time.Millisecond,
	}
}

func (r *Runner) setup() error {
	r.pri = primary.NewCluster(1, rowsPerBlock)
	// Heartbeats keep redo flowing during idle stretches: they push buffered
	// resequencing windows forward and let quiesce points converge even when
	// the last data frame was delayed or held back by a fault. The interval is
	// deliberately modest: each frame is a chance for the injector to sever
	// the connection, so redo generation must stay below the faulted
	// transport's sustainable throughput or catch-up livelocks — the receiver
	// keeps reconnecting and re-shipping while the frontier outruns it.
	r.pri.StartHeartbeats(5 * time.Millisecond)

	cfg := standby.Config{
		RowsPerBlock:       rowsPerBlock,
		CheckpointInterval: time.Millisecond,
		PopulationInterval: time.Millisecond,
		BlocksPerIMCU:      blocksPerIMCU,
		// Trace every commit end-to-end so the oracle can assert that every
		// sampled span closes complete (or is explicitly truncated by a
		// crash/transition) — never leaked, never gap-ridden.
		FreshnessSampleEvery: 1,
		// Liveness: a wedged pipeline should fail the run within the stall
		// deadline with a diagnostic bundle, not hang until quiesceCatchUp's
		// 30s timeout. The deadline is generous enough that fault-storm
		// backoff stretches (capped at 1s per reconnect) never false-positive.
		WatchdogInterval:      50 * time.Millisecond,
		WatchdogStallDeadline: 8 * time.Second,
	}
	if r.opts.Checkpoints {
		dir, err := os.MkdirTemp("", "chaos-ckpt-")
		if err != nil {
			return err
		}
		r.ckptDir = dir
		cfg.SnapshotDir = dir
		// Fast enough that background checkpoints overlap writer bursts and
		// crash-restarts; the schedule adds explicit and racing ones on top.
		cfg.SnapshotInterval = 5 * time.Millisecond
		cfg.SnapshotRetain = 3
	}
	r.sc = rac.NewStandbyCluster(cfg, 0)
	r.sby = r.sc.Master

	src, err := r.buildTransport()
	if err != nil {
		return err
	}
	r.sc.Attach(src)
	// Ship-stage backlog: furthest redo written on the primary minus the
	// receiver's delivery frontier.
	r.sby.SetShipFrontier(func() scn.SCN {
		var last scn.SCN
		for _, s := range r.priStreams() {
			if l := s.LastSCN(); l > last {
				last = l
			}
		}
		return last
	})
	r.stallCh = make(chan *obs.Bundle, 1)
	r.sby.Watchdog().OnStall(func(b *obs.Bundle) {
		select {
		case r.stallCh <- b:
		default:
		}
	})
	r.sc.Start()

	tbl, err := r.pri.Instance(0).CreateTable(&rowstore.TableSpec{
		Name:   "C101",
		Tenant: 1,
		Columns: []rowstore.Column{
			{Name: "id", Kind: rowstore.KindNumber},
			{Name: "n1", Kind: rowstore.KindNumber},
			{Name: "c1", Kind: rowstore.KindVarchar},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	})
	if err != nil {
		return err
	}
	r.tbl = tbl
	if err := r.pri.Instance(0).AlterInMemory(1, "C101", "",
		rowstore.InMemoryAttr{Enabled: true, Service: "standby"}); err != nil {
		return err
	}

	// Base rows, fully shipped and populated before the storm starts.
	if err := r.insertRows(0, baseRows); err != nil {
		return err
	}
	if err := r.quiesceCatchUp(); err != nil {
		return err
	}
	if !r.sby.Engine().WaitIdle(20 * time.Second) {
		return fmt.Errorf("initial population did not settle")
	}

	if r.opts.FleetChurn {
		// One reader before the storm; churn steps reconcile between 1 and 3.
		r.fleetSize = 1
		r.midAdded = map[int]bool{}
		r.flt = fleet.NewManager(r.sc, fleet.Spec{
			Readers:      r.fleetSize,
			DrainTimeout: 2 * time.Second,
		}, imcs.Config{BlocksPerIMCU: blocksPerIMCU, Interval: time.Millisecond})
		if !r.flt.WaitReady(20 * time.Second) {
			return fmt.Errorf("initial fleet reader never Ready: %+v", r.flt.Stats())
		}
	}

	r.oracle = &oracle{r: r}
	r.monitor = startMonitor(r)
	return nil
}

// fleetChurnStep reconciles the fleet to a seeded target size while the storm
// runs. Readers added here are provisioned against a moving watermark — the
// mid-run-added-reader-reaches-Ready requirement checked at the final quiesce.
func (r *Runner) fleetChurnStep() {
	want := 1 + r.rng.Intn(3)
	if want == r.fleetSize {
		want = 1 + want%3
	}
	r.reconcileFleet(want)
}

// reconcileFleet applies a new membership target and records every reader it
// provisioned (churn bookkeeping for the mid-run Ready requirement).
func (r *Runner) reconcileFleet(want int) {
	before := map[int]bool{}
	for _, rd := range r.flt.Readers() {
		before[rd.ID()] = true
	}
	r.flt.SetReaders(want)
	for _, rd := range r.flt.Readers() {
		if !before[rd.ID()] {
			r.midAdded[rd.ID()] = true
			r.res.FleetMidAdds++
		}
	}
	r.fleetSize = want
	r.res.FleetChurns++
}

// midAddedPresent reports whether any reader provisioned mid-storm is still a
// fleet member.
func (r *Runner) midAddedPresent() bool {
	for _, rd := range r.flt.Readers() {
		if r.midAdded[rd.ID()] {
			return true
		}
	}
	return false
}

func (r *Runner) priStreams() []*redo.Stream {
	var streams []*redo.Stream
	for _, inst := range r.pri.Instances() {
		streams = append(streams, inst.Stream())
	}
	return streams
}

func (r *Runner) buildTransport() (transport.Source, error) {
	streams := r.priStreams()
	if !r.opts.UseTCP {
		src := transport.NewInProc(streams...)
		r.curSource = src
		return src, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r.srv = transport.NewServer(ln, streams...)
	plan := r.defaultPlan()
	if r.opts.Faults != nil {
		plan = *r.opts.Faults
	}
	if r.opts.ReorderWindow < 2 {
		plan.ReorderProb = 0 // reorder without a resequencing window is unsound
	}
	r.injector = transport.NewFaultInjector(r.opts.Seed, plan)
	r.srv.SetFaultInjector(r.injector)
	for _, s := range streams {
		r.threads = append(r.threads, s.Thread())
	}
	rcv, err := transport.ConnectOpts(r.srv.Addr(), r.threads, 0,
		transport.Options{ReorderWindow: r.opts.ReorderWindow})
	if err != nil {
		return nil, err
	}
	r.rcv = rcv
	r.curSource = rcv
	return rcv, nil
}

// run executes the randomized schedule: writer bursts with live probes,
// partition faults, crash-restarts, and quiesce points with the full oracle.
func (r *Runner) run() error {
	// The mutation self-test: arm the bug, make one committed single-row
	// update against a settled IMCU (one stale row, too little damage to
	// trigger repopulation heuristics), and let the first quiesce point
	// catch it.
	if r.opts.MutateSkipJournal > 0 {
		r.sby.InjectJournalSkip(r.opts.MutateSkipJournal)
		if err := r.singleUpdate(int64(r.rng.Intn(baseRows)), 424242); err != nil {
			return r.fail("mutation update: %v", err)
		}
	}

	for step := 0; step < r.opts.Steps; step++ {
		p := r.rng.Float64()
		switch {
		case p < 0.50:
			if err := r.writerBurst(); err != nil {
				return err
			}
		case p < 0.60 && r.srv != nil:
			r.srv.DropConnections()
		case p < 0.70 && r.opts.CrashRestarts:
			if err := r.crashRestart(); err != nil {
				return err
			}
		case p < 0.80 && r.flt != nil:
			r.fleetChurnStep()
		case p < 0.90 && r.ckptDir != "":
			if err := r.checkpointStep(); err != nil {
				return err
			}
		default:
			if err := r.quiescePoint(); err != nil {
				return err
			}
		}
		if err := r.monitor.err(); err != nil {
			return r.fail("%v", err)
		}
	}
	// A fleet-churn run must always verify a reader provisioned mid-storm: if
	// no mid-added reader is still a member (the schedule dealt no add, or
	// churn removed them all again), force one before the final quiesce.
	if r.flt != nil && !r.midAddedPresent() {
		r.reconcileFleet(r.fleetSize + 1)
	}
	// A checkpoint run must always exercise snapshot-then-redo-catch-up, not
	// just write snapshots: force checkpoint → churn → crash-restart, then
	// require that at least one restart across the run actually restored.
	// (Scheduled corruption steps may have forced earlier restarts into the
	// fallback; this final checkpoint is newest and valid, so this restart
	// restores.) The final quiesce point below then runs the full three-way
	// equivalence oracle over the restored-and-caught-up store.
	if r.ckptDir != "" {
		if _, err := r.sby.CheckpointNow(); err != nil {
			return r.fail("forced checkpoint: %v", err)
		}
		if err := r.writerBurst(); err != nil {
			return err
		}
		if err := r.crashRestart(); err != nil {
			return err
		}
		if cs := r.sby.CheckpointStats(); cs.Restores == 0 {
			return r.fail("no restart restored from a checkpoint (stats %+v)", cs)
		}
	}
	// Always end on a full quiesce point: the run's final state is checked no
	// matter how the schedule dealt the steps.
	return r.quiescePoint()
}

// writerBurst runs 1–3 concurrent writer goroutines, each committing a few
// precomputed transactions, while the scheduler goroutine interleaves live
// equivalence probes against the moving QuerySCN.
func (r *Runner) writerBurst() error {
	nWriters := 1 + r.rng.Intn(3)
	scripts := make([][]writerOp, nWriters)
	chunk := baseRows / 3 // disjoint update ranges even at 3 writers
	for w := 0; w < nWriters; w++ {
		nTx := 1 + r.rng.Intn(3)
		for k := 0; k < nTx; k++ {
			op := writerOp{marker: int64(r.rng.Intn(1000))}
			op.abort = r.rng.Intn(6) == 0
			lo := w * chunk
			for j := 0; j < 1+r.rng.Intn(5); j++ {
				op.updates = append(op.updates, int64(lo+r.rng.Intn(chunk)))
			}
			if !op.abort {
				for j := 0; j < r.rng.Intn(3); j++ {
					op.inserts = append(op.inserts, r.nextID)
					r.nextID++
				}
				if len(r.liveIDs) > 0 && r.rng.Intn(3) == 0 {
					// Pop a committed id; each id is deleted at most once.
					i := r.rng.Intn(len(r.liveIDs))
					op.deletes = append(op.deletes, r.liveIDs[i])
					r.liveIDs[i] = r.liveIDs[len(r.liveIDs)-1]
					r.liveIDs = r.liveIDs[:len(r.liveIDs)-1]
				}
			}
			scripts[w] = append(scripts[w], op)
		}
	}

	errs := make(chan error, nWriters)
	for w := 0; w < nWriters; w++ {
		go func(script []writerOp) {
			errs <- r.runScript(script)
		}(scripts[w])
	}
	// Live probes while the writers commit.
	probes := 2 + r.rng.Intn(3)
	var probeErr error
	for i := 0; i < probes && probeErr == nil; i++ {
		probeErr = r.oracle.liveProbe()
	}
	var writerErr error
	for w := 0; w < nWriters; w++ {
		if e := <-errs; e != nil && writerErr == nil {
			writerErr = e
		}
	}
	if writerErr != nil {
		return r.fail("writer: %v", writerErr)
	}
	if probeErr != nil {
		return probeErr
	}
	// Committed inserts become eligible for future deletion.
	for _, script := range scripts {
		for _, op := range script {
			if !op.abort {
				r.liveIDs = append(r.liveIDs, op.inserts...)
			}
		}
	}
	return nil
}

// runScript applies one writer's transactions against the primary.
func (r *Runner) runScript(script []writerOp) error {
	s := r.tbl.Schema()
	for _, op := range script {
		tx := r.pri.Instance(0).Begin()
		for _, id := range op.updates {
			if err := tx.UpdateByID(r.tbl, id, []uint16{1}, func(row *rowstore.Row) {
				row.Nums[s.Col(1).Slot()] = op.marker
			}); err != nil {
				return fmt.Errorf("update id %d: %w", id, err)
			}
		}
		for _, id := range op.inserts {
			row := rowstore.NewRow(s)
			row.Nums[s.Col(0).Slot()] = id
			row.Nums[s.Col(1).Slot()] = op.marker
			row.Strs[s.Col(2).Slot()] = colors[id%int64(len(colors))]
			if _, err := tx.Insert(r.tbl, row); err != nil {
				return fmt.Errorf("insert id %d: %w", id, err)
			}
		}
		for _, id := range op.deletes {
			if err := tx.DeleteByID(r.tbl, id); err != nil {
				return fmt.Errorf("delete id %d: %w", id, err)
			}
		}
		if op.abort {
			if err := tx.Abort(); err != nil {
				return err
			}
			continue
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

var colors = []string{"red", "green", "blue", "amber"}

// insertRows commits one transaction inserting ids [from, to).
func (r *Runner) insertRows(from, to int64) error {
	s := r.tbl.Schema()
	tx := r.pri.Instance(0).Begin()
	for i := from; i < to; i++ {
		row := rowstore.NewRow(s)
		row.Nums[s.Col(0).Slot()] = i
		row.Nums[s.Col(1).Slot()] = i % 100
		row.Strs[s.Col(2).Slot()] = colors[i%int64(len(colors))]
		if _, err := tx.Insert(r.tbl, row); err != nil {
			return err
		}
	}
	_, err := tx.Commit()
	return err
}

// singleUpdate commits one single-row update (the mutation self-test's
// minimal damage: exactly one invalidation record).
func (r *Runner) singleUpdate(id, marker int64) error {
	s := r.tbl.Schema()
	tx := r.pri.Instance(0).Begin()
	if err := tx.UpdateByID(r.tbl, id, []uint16{1}, func(row *rowstore.Row) {
		row.Nums[s.Col(1).Slot()] = marker
	}); err != nil {
		return err
	}
	_, err := tx.Commit()
	return err
}

// quiesceCatchUp waits until the standby's QuerySCN reaches the primary's
// current snapshot. A watchdog stall verdict fails the wait immediately (with
// the captured flight-recorder bundle) instead of burning the full timeout; a
// plain timeout captures a bundle manually so the failure is equally
// diagnosable.
func (r *Runner) quiesceCatchUp() error {
	target := r.pri.Snapshot()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if r.sby.QuerySCN() >= target {
			return nil
		}
		select {
		case b := <-r.stallCh:
			// Re-check before failing: a transient verdict that already
			// healed (progress resumed) is not a wedge.
			if rep := r.sby.Watchdog().Health(); rep.Verdict == "stalled" {
				return fmt.Errorf("standby stalled: %s", r.stallDigest(b, target))
			}
		default:
			time.Sleep(200 * time.Microsecond)
		}
	}
	if r.sby.QuerySCN() >= target {
		return nil
	}
	b := r.sby.FlightRecorder().Capture("quiesce timeout", r.sby.Watchdog().Health().Stages)
	return fmt.Errorf("standby stuck: %s", r.stallDigest(b, target))
}

// stallDigest renders a bounded, human-readable summary of a stall bundle:
// the liveness table, transport state and pipeline stats. The full bundle
// (goroutine profile, metrics, trace tail) stays in the flight recorder — and
// is additionally written to CHAOS_ARTIFACT_DIR when that is set, so CI can
// upload it next to the failing log.
func (r *Runner) stallDigest(b *obs.Bundle, target scn.SCN) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "QuerySCN=%d target=%d stats=%+v", r.sby.QuerySCN(), target, r.sby.Stats())
	if b == nil {
		return sb.String()
	}
	fmt.Fprintf(&sb, "\n  bundle #%d: %s", b.Seq, b.Reason)
	for _, s := range b.Stages {
		fmt.Fprintf(&sb, "\n  stage %-9s %-8s count=%-8d backlog=%-6d since_advance=%.1fs",
			s.Stage, s.State, s.Count, s.Backlog, s.SinceAdvance)
	}
	if ts, ok := b.State["transport"]; ok {
		fmt.Fprintf(&sb, "\n  transport=%+v", ts)
	}
	if path := r.dumpBundle(b); path != "" {
		fmt.Fprintf(&sb, "\n  full bundle written to %s", path)
	}
	return sb.String()
}

// dumpBundle writes the full diagnostic bundle (goroutine profile, metrics
// snapshot, trace tail, component states) plus the replay seed as JSON into
// the directory named by the CHAOS_ARTIFACT_DIR environment variable, and
// returns the file path. No-op (empty path) when the variable is unset; best
// effort on error — artifact capture must never mask the underlying failure.
func (r *Runner) dumpBundle(b *obs.Bundle) string {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" || b == nil {
		return ""
	}
	doc := struct {
		ReplaySeed int64       `json:"replay_seed"`
		Bundle     *obs.Bundle `json:"bundle"`
	}{r.opts.Seed, b}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-bundle-seed%d-%d.json", r.opts.Seed, b.Seq))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return ""
	}
	return path
}

// quiescePoint catches up and runs the full oracle, including the per-reader
// fleet equivalence when a fleet is attached.
func (r *Runner) quiescePoint() error {
	if err := r.quiesceCatchUp(); err != nil {
		return r.fail("%v", err)
	}
	if err := r.oracle.quiesceCheck(); err != nil {
		return err
	}
	if r.flt != nil {
		if err := r.oracle.fleetCheck(); err != nil {
			return err
		}
	}
	if err := r.monitor.err(); err != nil {
		return r.fail("%v", err)
	}
	return nil
}

// crashRestart kills and restarts the standby instance mid-pipeline: volatile
// IM-ADG state (journal, commit table, IMCS) is lost; apply resumes from the
// resume point. Over TCP the old receiver is torn down and a new one dials in
// at ResumePoint()+1 — with snapshots enabled that is the newest checkpoint's
// SCN, so the redial keeps the archived-log window the restore needs.
func (r *Runner) crashRestart() error {
	r.res.Restarts++
	// The incarnation ends here: with a checkpoint configured the restore
	// rolls QuerySCN back to the snapshot's SCN, which the monitor must treat
	// as a fresh baseline, not a monotonicity violation.
	r.monitor.beginRestart()
	defer r.monitor.endRestart()
	if r.rcv == nil {
		src := transport.NewInProc(r.priStreams()...)
		r.curSource = src
		if err := r.sby.Restart(src); err != nil {
			return r.fail("restart: %v", err)
		}
		return nil
	}
	r.sby.Stop()
	_ = r.rcv.Close()
	rcv, err := transport.ConnectOpts(r.srv.Addr(), r.threads, r.sby.ResumePoint()+1,
		transport.Options{ReorderWindow: r.opts.ReorderWindow})
	if err != nil {
		return r.fail("restart redial: %v", err)
	}
	r.rcv = rcv
	r.curSource = rcv
	if err := r.sby.Restart(rcv); err != nil {
		return r.fail("restart: %v", err)
	}
	return nil
}

// checkpointStep deals one checkpoint hazard (Options.Checkpoints): a plain
// explicit checkpoint, a crash-restart racing an in-flight checkpoint (the
// temp-file + atomic-rename protocol must leave either the previous or the
// new snapshot valid — never a torn one), or seeded corruption of the newest
// snapshot file (the next restore must reject it and either use an older
// valid file or fall back to the full rebuild). Every variant is followed by
// the regular quiesce oracles, so any wrong restored byte fails equivalence.
func (r *Runner) checkpointStep() error {
	switch r.rng.Intn(3) {
	case 0:
		if _, err := r.sby.CheckpointNow(); err != nil {
			return r.fail("checkpoint: %v", err)
		}
	case 1:
		done := make(chan struct{})
		sby := r.sby
		go func() {
			defer close(done)
			_, _ = sby.CheckpointNow() // racing the restart; failure is legitimate
		}()
		err := r.crashRestart()
		<-done
		if err != nil {
			return err
		}
	case 2:
		r.corruptNewestSnapshot()
	}
	return nil
}

// corruptNewestSnapshot flips one seeded byte in the newest snapshot file,
// past the header so the file still lists (List filters header-invalid files
// before they count as corrupt candidates) and the damage is caught by the
// payload/trailer CRCs on the next restore attempt.
func (r *Runner) corruptNewestSnapshot() {
	m, ok := checkpoint.Newest(r.ckptDir)
	if !ok {
		return
	}
	raw, err := os.ReadFile(m.Path)
	if err != nil || len(raw) < 64 {
		return
	}
	off := 52 + r.rng.Intn(len(raw)-52)
	raw[off] ^= byte(1 << r.rng.Intn(8))
	if os.WriteFile(m.Path, raw, 0o644) == nil {
		r.res.SnapshotsCorrupted++
	}
}

// transition runs the optional end-of-run role transition under load: a last
// writer burst is left in flight (not yet caught up) when the broker starts
// terminal recovery.
func (r *Runner) transition() error {
	if r.opts.Transition == TransitionNone {
		return nil
	}
	if err := r.writerBurst(); err != nil {
		return err
	}
	r.monitor.stop() // promotion legitimately stops the apply pipeline
	if r.flt != nil {
		// The standby is about to be promoted: the fleet drains with it, the
		// same path Cluster.Failover/Switchover takes.
		r.flt.Shutdown()
	}

	brk := broker.New(broker.Config{
		Primary:      r.pri,
		Standby:      r.sc,
		Source:       r.curSource,
		Server:       r.srv,
		DrainTimeout: 20 * time.Second,
		StandbyConfig: standby.Config{
			CheckpointInterval:   time.Millisecond,
			PopulationInterval:   time.Millisecond,
			BlocksPerIMCU:        blocksPerIMCU,
			FreshnessSampleEvery: 1,
		},
	})

	switch r.opts.Transition {
	case TransitionFailover:
		res, err := brk.Failover()
		if err != nil {
			return r.fail("failover: %v", err)
		}
		r.res.Transition = "failover"
		if res.WarmUnits == 0 {
			return r.fail("failover promotion was cold: %+v", res)
		}
		return r.oracle.postPromotion(brk.Promoted(), res.PromotedSCN, nil)
	case TransitionSwitchover:
		res, err := brk.Switchover()
		if err != nil {
			return r.fail("switchover: %v", err)
		}
		r.res.Transition = "switchover"
		if res.WarmUnits == 0 {
			return r.fail("switchover promotion was cold: %+v", res)
		}
		return r.oracle.postPromotion(brk.Promoted(), res.PromotedSCN, res.NewStandby)
	}
	return nil
}

func (r *Runner) collectCounters() {
	if r.injector != nil {
		r.res.FaultCounts = r.injector.Counts()
	}
	if r.sby != nil {
		r.res.Stalls = r.sby.Watchdog().Stalls()
		if r.ckptDir != "" {
			cs := r.sby.CheckpointStats()
			r.res.Checkpoints = cs.Written
			r.res.CheckpointRestores = cs.Restores
			r.res.CheckpointFallbacks = cs.RestoreFallbacks
		}
	}
	if r.rcv != nil {
		r.res.Reconnects = r.rcv.Reconnects()
		r.res.Corrupt = r.rcv.CorruptFrames()
		r.res.Duplicates = r.rcv.DuplicatesDropped()
	}
}

// teardown releases whatever the run still owns. After a transition the
// broker already closed the primary, server and source; the remaining pieces
// (engines, promoted clusters) are stopped by the oracle's post-promotion
// path, so only the steady-state resources are handled here.
func (r *Runner) teardown() {
	if r.ckptDir != "" {
		defer os.RemoveAll(r.ckptDir)
	}
	if r.monitor != nil {
		r.monitor.stop()
	}
	if r.flt != nil {
		r.flt.Shutdown() // idempotent; transitions already drained it
		r.res.FleetReaders = r.fleetSize
	}
	if r.res.Transition != "" {
		r.collectCounters()
		return
	}
	if r.sc != nil {
		r.sc.Stop()
	}
	if r.rcv != nil {
		r.collectCounters()
		_ = r.rcv.Close()
	}
	if r.srv != nil {
		_ = r.srv.Close()
	}
	if r.pri != nil {
		r.pri.Close()
	}
}
