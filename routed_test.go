package dbimadg_test

import (
	"errors"
	"testing"
	"time"

	"dbimadg"
)

func fleetCfg(readers int) dbimadg.Config {
	cfg := quickCfg()
	cfg.FleetReaders = readers
	return cfg
}

// TestRoutedSessionEndToEnd is the quickstart path: a fleet reader serves a
// routed query from its own column store, QuerySQL works over it, and the
// session snapshot tracks the reader's published QuerySCN.
func TestRoutedSessionEndToEnd(t *testing.T) {
	c, err := dbimadg.Open(fleetCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable(simpleSpec("T", 1))
	if err := c.AlterInMemory(1, "T", "", dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServiceStandbyOnly}); err != nil {
		t.Fatal(err)
	}
	insertRows(t, c, tbl, 0, 300)
	if !c.WaitStandbyCaughtUp(10 * time.Second) {
		t.Fatalf("standby lagging: %+v", c.Stats())
	}
	if !c.WaitFleetReady(10 * time.Second) {
		t.Fatalf("fleet never Ready: %+v", c.Fleet().Stats())
	}

	sTbl, _ := c.StandbyTable(1, "T")
	sess := c.RoutedSession(dbimadg.RouterOptions{Wait: 10 * time.Second})
	// Fleet readers trail asynchronously: carry the master's published SCN as
	// a freshness token so the count below is deterministic.
	sess.SetToken(c.StandbySession().Snapshot())
	res, err := sess.Query(&dbimadg.Query{Table: sTbl, Agg: dbimadg.AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 300 {
		t.Fatalf("routed count = %d, want 300", res.Count)
	}
	if sess.LastSnapshot() == 0 {
		t.Fatal("LastSnapshot not recorded")
	}
	sres, err := sess.QuerySQL(sTbl, "SELECT COUNT(*) FROM T WHERE n1 = :v", map[string]dbimadg.Bind{"v": dbimadg.NumBind(3)})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Count != 30 {
		t.Fatalf("routed SQL count = %d, want 30", sres.Count)
	}
	// Router totals surfaced for observability.
	if tot := c.Router().Totals(); tot.Placed < 2 {
		t.Fatalf("router totals = %+v, want >= 2 placed", tot)
	}
}

// TestRoutedReadYourWrites: a commit's SCN handed to SetToken guarantees
// every subsequent routed query runs at a snapshot at or past it — across
// repeated routing and a reader removal that forces re-placement.
func TestRoutedReadYourWrites(t *testing.T) {
	c, err := dbimadg.Open(fleetCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable(simpleSpec("T", 1))
	_ = c.AlterInMemory(1, "T", "", dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServiceStandbyOnly})
	insertRows(t, c, tbl, 0, 100)
	if !c.WaitStandbyCaughtUp(10*time.Second) || !c.WaitFleetReady(10*time.Second) {
		t.Fatalf("fleet sync failed: %+v", c.Fleet().Stats())
	}
	sTbl, _ := c.StandbyTable(1, "T")
	sess := c.RoutedSession(dbimadg.RouterOptions{Wait: 10 * time.Second})

	// Commit, carry the token, and require the write to be visible.
	psess := c.PrimarySession(0)
	s := tbl.Schema()
	var token dbimadg.SCN
	for round := 0; round < 5; round++ {
		tx, err := psess.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 10; i++ {
			r := dbimadg.NewRow(s)
			r.Nums[s.Col(0).Slot()] = int64(1000+round*10) + i
			r.Nums[s.Col(1).Slot()] = int64(round)
			if _, err := tx.Insert(tbl, r); err != nil {
				t.Fatal(err)
			}
		}
		token, err = tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		sess.SetToken(token)
		res, err := sess.Query(&dbimadg.Query{Table: sTbl, Agg: dbimadg.AggCount})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if snap := sess.LastSnapshot(); snap < token {
			t.Fatalf("round %d: snapshot %d below token %d", round, snap, token)
		}
		if want := int64(100 + (round+1)*10); res.Count != want {
			t.Fatalf("round %d: routed count = %d, want %d (read-your-writes violated)", round, res.Count, want)
		}
		// Mid-test membership churn: drop to one reader; the token must hold
		// on whichever reader placements land on next.
		if round == 2 {
			c.ApplyFleet(dbimadg.FleetSpec{Readers: 1})
		}
	}
	if sess.Token() != token {
		t.Fatalf("token = %d, want %d (monotone floor)", sess.Token(), token)
	}
	// A stale token never lowers the floor.
	sess.SetToken(1)
	if sess.Token() != token {
		t.Fatal("SetToken lowered the monotone floor")
	}
}

// TestRoutedReadYourWritesAcrossSwitchover: the token survives a role swap —
// after the fleet rebinds to the rebuilt standby, a commit on the promoted
// primary is visible to the session that carries its SCN.
func TestRoutedReadYourWritesAcrossSwitchover(t *testing.T) {
	c, err := dbimadg.Open(fleetCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable(simpleSpec("T", 1))
	_ = c.AlterInMemory(1, "T", "", dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServiceStandbyOnly})
	insertRows(t, c, tbl, 0, 200)
	if !c.WaitStandbyCaughtUp(10*time.Second) || !c.WaitFleetReady(10*time.Second) {
		t.Fatal("fleet sync failed")
	}
	sess := c.RoutedSession(dbimadg.RouterOptions{Wait: 15 * time.Second})
	sTbl, _ := c.StandbyTable(1, "T")
	if _, err := sess.Query(&dbimadg.Query{Table: sTbl, Agg: dbimadg.AggCount}); err != nil {
		t.Fatal(err)
	}
	preSnap := sess.LastSnapshot()

	if _, err := c.Switchover(); err != nil {
		t.Fatal(err)
	}
	if !c.WaitFleetReady(20 * time.Second) {
		t.Fatalf("fleet did not rebind after switchover: %+v", c.Fleet().Stats())
	}

	// New DML on the promoted node; its commit SCN is the session's token.
	pTbl, _ := c.PrimaryTable(1, "T")
	psess := c.PrimarySession(0)
	tx, err := psess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	s := tbl.Schema()
	for i := int64(200); i < 250; i++ {
		r := dbimadg.NewRow(s)
		r.Nums[s.Col(0).Slot()] = i
		r.Nums[s.Col(1).Slot()] = i % 10
		if _, err := tx.Insert(pTbl, r); err != nil {
			t.Fatal(err)
		}
	}
	token, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	sess.SetToken(token)
	nTbl, _ := c.StandbyTable(1, "T")
	res, err := sess.Query(&dbimadg.Query{Table: nTbl, Agg: dbimadg.AggCount})
	if err != nil {
		t.Fatalf("routed query after switchover: %v", err)
	}
	if snap := sess.LastSnapshot(); snap < token {
		t.Fatalf("post-switchover snapshot %d below token %d", snap, token)
	}
	if snap := sess.LastSnapshot(); snap < preSnap {
		t.Fatalf("snapshot went backwards across switchover: %d -> %d", preSnap, snap)
	}
	if res.Count != 250 {
		t.Fatalf("post-switchover routed count = %d, want 250", res.Count)
	}
}

// TestRoutedErrorsAfterFailover: a failover consumes the standby, so both
// the RAC reader path and the fleet router must fail with typed ErrNoReader
// that callers can match with errors.Is.
func TestRoutedErrorsAfterFailover(t *testing.T) {
	c, err := dbimadg.Open(fleetCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable(simpleSpec("T", 1))
	_ = c.AlterInMemory(1, "T", "", dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServiceStandbyOnly})
	insertRows(t, c, tbl, 0, 100)
	if !c.WaitStandbyCaughtUp(10*time.Second) || !c.WaitFleetReady(10*time.Second) {
		t.Fatal("fleet sync failed")
	}
	sTbl, _ := c.StandbyTable(1, "T")
	sess := c.RoutedSession(dbimadg.RouterOptions{})
	if _, err := sess.Query(&dbimadg.Query{Table: sTbl, Agg: dbimadg.AggCount}); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Failover(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(&dbimadg.Query{Table: sTbl, Agg: dbimadg.AggCount}); !errors.Is(err, dbimadg.ErrNoReader) {
		t.Fatalf("routed query after failover err = %v, want ErrNoReader", err)
	}
	if _, err := c.StandbyReaderSession(0); !errors.Is(err, dbimadg.ErrNoReader) {
		t.Fatalf("StandbyReaderSession after failover err = %v, want ErrNoReader", err)
	}
	if len(c.Fleet().Readers()) != 0 {
		t.Fatal("fleet readers survive a failover")
	}
}

// TestRoutedOverloadSheds saturates a one-slot fleet and requires typed
// shedding at the session API.
func TestRoutedOverloadSheds(t *testing.T) {
	cfg := fleetCfg(1)
	cfg.FleetMaxConcurrentScans = 1
	cfg.FleetQueueDepth = 1
	cfg.FleetQueueTimeout = 5 * time.Millisecond
	c, err := dbimadg.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable(simpleSpec("T", 1))
	_ = c.AlterInMemory(1, "T", "", dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServiceStandbyOnly})
	insertRows(t, c, tbl, 0, 100)
	if !c.WaitStandbyCaughtUp(10*time.Second) || !c.WaitFleetReady(10*time.Second) {
		t.Fatal("fleet sync failed")
	}
	// Hold the only slot via the router, then drive session queries into it.
	p, err := c.Router().Place(dbimadg.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	parked := make(chan struct{})
	go func() { // occupies the queue slot until its deadline
		defer close(parked)
		_, _ = c.Router().Place(dbimadg.RouterOptions{})
	}()
	sTbl, _ := c.StandbyTable(1, "T")
	sess := c.RoutedSession(dbimadg.RouterOptions{})
	deadline := time.Now().Add(2 * time.Second)
	var qerr error
	for time.Now().Before(deadline) {
		_, qerr = sess.Query(&dbimadg.Query{Table: sTbl, Agg: dbimadg.AggCount})
		if errors.Is(qerr, dbimadg.ErrOverloaded) {
			break
		}
	}
	if !errors.Is(qerr, dbimadg.ErrOverloaded) {
		t.Fatalf("saturated routed query err = %v, want ErrOverloaded", qerr)
	}
	<-parked
}
