package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: dbimadg
cpu: Fake CPU @ 3.00GHz
BenchmarkScan/imcs-8         	    1203	    987654 ns/op	     320 B/op	       7 allocs/op
BenchmarkScan/rowstore-8     	      61	  19876543 ns/op	 1048576 B/op	    2048 allocs/op	  52.5 cvs/s
some test log line
PASS
ok  	dbimadg	4.321s
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "dbimadg" {
		t.Fatalf("bad header: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkScan/imcs-8" || b.Iterations != 1203 {
		t.Fatalf("bad benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 987654 || b.Metrics["allocs/op"] != 7 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	if doc.Benchmarks[1].Metrics["cvs/s"] != 52.5 {
		t.Fatalf("custom metric not parsed: %+v", doc.Benchmarks[1].Metrics)
	}
}

func TestFailoverSummary(t *testing.T) {
	in := `goos: linux
BenchmarkFailover-8 	       3	 342269399 ns/op	        97.79 coldrepop-ms	         0.09735 promote-ms
PASS
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	fs := doc.Failover
	if fs == nil {
		t.Fatal("failover summary not extracted")
	}
	if fs.PromoteMs != 0.09735 || fs.ColdRepopMs != 97.79 {
		t.Fatalf("bad summary: %+v", fs)
	}
	if fs.Speedup < 1000 || fs.Speedup > 1010 {
		t.Fatalf("speedup = %v, want ~1004", fs.Speedup)
	}
}

func TestFailoverSummaryAbsent(t *testing.T) {
	in := "BenchmarkScan-8 100 123 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Failover != nil {
		t.Fatalf("spurious failover summary: %+v", doc.Failover)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOnly",
		"BenchmarkOddFields-8 100 123",
		"BenchmarkBadIters-8 abc 123 ns/op",
		"BenchmarkBadValue-8 100 abc ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted malformed line", line)
		}
	}
}

func TestGroupBySummary(t *testing.T) {
	in := `goos: linux
BenchmarkGroupBy/EncodedIMCS-8         	    4000	    300000 ns/op
BenchmarkGroupBy/RowFallback-8         	     300	   4500000 ns/op
BenchmarkGroupBy/MultiAggSinglePass-8  	    5000	    200000 ns/op
BenchmarkGroupBy/MultiAggTwoScans-8    	    2500	    440000 ns/op
PASS
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	gs := doc.GroupBy
	if gs == nil {
		t.Fatal("groupby summary not extracted")
	}
	if gs.EncodedNs != 300000 || gs.RowFallbackNs != 4500000 {
		t.Fatalf("bad summary: %+v", gs)
	}
	if gs.Speedup != 15 || gs.SinglePassGain != 2.2 {
		t.Fatalf("bad ratios: %+v", gs)
	}
}

func TestGroupBySummaryAbsent(t *testing.T) {
	in := "BenchmarkGroupBy/EncodedIMCS-8 100 123 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GroupBy != nil {
		t.Fatalf("spurious groupby summary: %+v", doc.GroupBy)
	}
}

func TestFreshnessSummary(t *testing.T) {
	in := `goos: linux
BenchmarkFreshness-8 	 50	 2500000 ns/op	 2.0 c2v-p50-ms	 55.0 c2v-p99-ms	 2.5 qage-p50-ms	 150.0 qage-p99-ms	 0.01 apply-p50-ms	 22.0 apply-p99-ms	 0.002 flush-p50-ms	 0.02 flush-p99-ms	 0.0001 merge-p50-ms	 0.0002 merge-p99-ms
PASS
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	fs := doc.Freshness
	if fs == nil {
		t.Fatal("freshness summary not extracted")
	}
	if fs.C2VP50Ms != 2.0 || fs.C2VP99Ms != 55.0 || fs.QueryAgeP50Ms != 2.5 {
		t.Fatalf("bad summary: %+v", fs)
	}
	// Stages come out in pipeline flow order, observed stages only.
	if len(fs.Stages) != 3 || fs.Stages[0].Stage != "merge" || fs.Stages[1].Stage != "apply" || fs.Stages[2].Stage != "flush" {
		t.Fatalf("bad stage order: %+v", fs.Stages)
	}
	if fs.Stages[1].P99Ms != 22.0 {
		t.Fatalf("bad stage quantile: %+v", fs.Stages[1])
	}
}

func TestWatchdogSummary(t *testing.T) {
	in := `goos: linux
BenchmarkWatchdog/ApplyOn-8        	    1000	   1010000 ns/op	  42.0 cvs/s
BenchmarkWatchdog/ApplyOff-8       	    1000	   1000000 ns/op	  42.5 cvs/s
BenchmarkWatchdog/HeartbeatTick-8  	100000000	         2.5 ns/op
PASS
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	ws := doc.Watchdog
	if ws == nil {
		t.Fatal("watchdog summary not extracted")
	}
	if ws.ApplyOnNs != 1010000 || ws.ApplyOffNs != 1000000 || ws.TickNs != 2.5 {
		t.Fatalf("bad summary: %+v", ws)
	}
	if ws.OverheadPct < 0.99 || ws.OverheadPct > 1.01 {
		t.Fatalf("overhead = %v%%, want ~1%%", ws.OverheadPct)
	}
}

func TestWatchdogSummaryAbsent(t *testing.T) {
	in := "BenchmarkWatchdog/HeartbeatTick-8 100 2.5 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Watchdog != nil {
		t.Fatalf("spurious watchdog summary: %+v", doc.Watchdog)
	}
}

func TestFleetSummary(t *testing.T) {
	in := `goos: linux
BenchmarkFleetOverload 	       1	4669214031 ns/op	       149.8 apply-base-cvs/s	       149.7 apply-load-cvs/s	        99.94 apply-ratio-pct	        48.88 placed/s	         0.0006554 route-p50-ms	         5.598 route-p99-ms	     10000 sessions	     23436 shed/s
PASS
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	fs := doc.Fleet
	if fs == nil {
		t.Fatal("fleet summary not extracted")
	}
	if fs.Sessions != 10000 || fs.RouteP99Ms != 5.598 || fs.ShedPerSec != 23436 {
		t.Fatalf("bad summary: %+v", fs)
	}
	if fs.ApplyRatioPct < 99.9 || fs.ApplyRatioPct > 100 {
		t.Fatalf("apply ratio = %v%%, want ~99.93%%", fs.ApplyRatioPct)
	}
}

func TestFleetSummaryAbsent(t *testing.T) {
	in := "BenchmarkFleetOverload-8 1 123 ns/op 5.5 route-p99-ms\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Fleet != nil {
		t.Fatalf("spurious fleet summary: %+v", doc.Fleet)
	}
}

func TestFreshnessSummaryAbsent(t *testing.T) {
	in := "BenchmarkFig9_Q1_StandbyIMCS-8 100 123 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Freshness != nil {
		t.Fatalf("spurious freshness summary: %+v", doc.Freshness)
	}
}
