// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark results can be archived and
// diffed across commits (make bench-json writes BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem -run '^$' . | benchjson [-o out.json]
//
// It understands the standard benchmark line format — name, iteration count,
// then value/unit pairs (ns/op, B/op, allocs/op, and custom ReportMetric
// units such as cvs/s) — plus the goos/goarch/pkg/cpu context header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// -cpu suffix, e.g. "BenchmarkScan/imcs-8".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every value/unit pair on the line
	// (e.g. "ns/op": 1234.5, "B/op": 96, "allocs/op": 2, "cvs/s": 1.2e6).
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the output document.
type Doc struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Failover summarizes the role-transition benchmark when the run includes
	// BenchmarkFailover: warm-promotion latency vs the cold IMCS rebuild it
	// avoids, and the resulting speedup.
	Failover *FailoverSummary `json:"failover,omitempty"`
	// GroupBy summarizes BenchmarkGroupBy when present: the encoding-aware
	// grouped aggregate vs the row-at-a-time fallback, and the single-pass
	// multi-aggregate vs two separate scans.
	GroupBy *GroupBySummary `json:"groupby,omitempty"`
	// Freshness summarizes BenchmarkFreshness when present: end-to-end
	// commit-to-visible latency quantiles decomposed by pipeline stage, plus
	// the first-query visibility age.
	Freshness *FreshnessSummary `json:"freshness,omitempty"`
	// Watchdog summarizes BenchmarkWatchdog when present: the redo apply hot
	// path with the liveness watchdog running vs disabled, the derived
	// heartbeat overhead (budget < 2%), and the per-record heartbeat tick cost.
	Watchdog *WatchdogSummary `json:"watchdog,omitempty"`
	// Fleet summarizes BenchmarkFleetOverload when present: the reader fleet's
	// admission control under a 10k-session scan storm — routing quantiles,
	// placement/shed rates, and redo apply throughput under load vs the no-load
	// baseline (budget >= 90%).
	Fleet *FleetSummary `json:"fleet,omitempty"`
	// Morsel summarizes BenchmarkMorselScaling when present: the work-stealing
	// scan scheduler's speedup over the serial baseline at each worker count,
	// with per-query morsel and steal counts.
	Morsel *MorselSummary `json:"morsel,omitempty"`
	// Checkpoint summarizes BenchmarkCheckpointRestart when present: cold
	// restart via snapshot-restore-plus-redo-catch-up vs the full row-store
	// rebuild it replaces, the snapshot size, and the apply-interference ratio
	// while a checkpoint is in flight (budget: within a few percent of 100).
	Checkpoint *CheckpointSummary `json:"checkpoint,omitempty"`
}

// FailoverSummary is derived from BenchmarkFailover's reported metrics.
type FailoverSummary struct {
	PromoteMs   float64 `json:"promote_ms"`
	ColdRepopMs float64 `json:"coldrepop_ms"`
	Speedup     float64 `json:"speedup"`
}

// failoverSummary extracts the summary from a parsed benchmark set; nil when
// the run did not include BenchmarkFailover (or its metrics are incomplete).
func failoverSummary(benchmarks []Benchmark) *FailoverSummary {
	for _, b := range benchmarks {
		if name, _, _ := strings.Cut(b.Name, "-"); name != "BenchmarkFailover" {
			continue
		}
		promote, okP := b.Metrics["promote-ms"]
		cold, okC := b.Metrics["coldrepop-ms"]
		if !okP || !okC || promote <= 0 {
			return nil
		}
		return &FailoverSummary{
			PromoteMs:   promote,
			ColdRepopMs: cold,
			Speedup:     cold / promote,
		}
	}
	return nil
}

// GroupBySummary is derived from BenchmarkGroupBy's sub-benchmarks.
type GroupBySummary struct {
	// EncodedNs / RowFallbackNs are ns/op of the grouped aggregate over the
	// column store (run-level folds) vs the pure row-store fallback.
	EncodedNs     float64 `json:"encoded_ns"`
	RowFallbackNs float64 `json:"row_fallback_ns"`
	Speedup       float64 `json:"speedup"`
	// SinglePassNs / TwoScansNs are ns/op of one four-aggregate scan vs two
	// separate single-aggregate scans of the same column.
	SinglePassNs   float64 `json:"single_pass_ns"`
	TwoScansNs     float64 `json:"two_scans_ns"`
	SinglePassGain float64 `json:"single_pass_gain"`
}

// groupBySummary extracts the summary from a parsed benchmark set; nil when
// the run did not include BenchmarkGroupBy's comparison sub-benchmarks.
func groupBySummary(benchmarks []Benchmark) *GroupBySummary {
	ns := map[string]float64{}
	for _, b := range benchmarks {
		name, _, _ := strings.Cut(b.Name, "-")
		if sub, ok := strings.CutPrefix(name, "BenchmarkGroupBy/"); ok {
			ns[sub] = b.Metrics["ns/op"]
		}
	}
	s := &GroupBySummary{
		EncodedNs:     ns["EncodedIMCS"],
		RowFallbackNs: ns["RowFallback"],
		SinglePassNs:  ns["MultiAggSinglePass"],
		TwoScansNs:    ns["MultiAggTwoScans"],
	}
	if s.EncodedNs <= 0 || s.RowFallbackNs <= 0 || s.SinglePassNs <= 0 || s.TwoScansNs <= 0 {
		return nil
	}
	s.Speedup = s.RowFallbackNs / s.EncodedNs
	s.SinglePassGain = s.TwoScansNs / s.SinglePassNs
	return s
}

// FreshnessSummary is derived from BenchmarkFreshness's reported metrics.
type FreshnessSummary struct {
	// C2V* are end-to-end commit-to-visible quantiles: primary commit wall
	// clock (stamped into the redo frame) to standby QuerySCN publication.
	C2VP50Ms float64 `json:"c2v_p50_ms"`
	C2VP99Ms float64 `json:"c2v_p99_ms"`
	// QueryAge* are first-query visibility ages: commit to the first standby
	// query whose snapshot covered it.
	QueryAgeP50Ms float64 `json:"query_age_p50_ms"`
	QueryAgeP99Ms float64 `json:"query_age_p99_ms"`
	// Stages decomposes the pipeline in flow order (only observed stages).
	Stages []FreshnessStage `json:"stages"`
}

// FreshnessStage is one pipeline stage's latency contribution.
type FreshnessStage struct {
	Stage string  `json:"stage"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// freshnessStageOrder is the redo pipeline's flow order for stable output.
var freshnessStageOrder = []string{"ship", "merge", "dispatch", "apply", "mine", "journal", "flush", "publish"}

// freshnessSummary extracts the summary from a parsed benchmark set; nil when
// the run did not include BenchmarkFreshness.
func freshnessSummary(benchmarks []Benchmark) *FreshnessSummary {
	for _, b := range benchmarks {
		if name, _, _ := strings.Cut(b.Name, "-"); name != "BenchmarkFreshness" {
			continue
		}
		p50, okP := b.Metrics["c2v-p50-ms"]
		p99, okQ := b.Metrics["c2v-p99-ms"]
		if !okP || !okQ {
			return nil
		}
		s := &FreshnessSummary{
			C2VP50Ms:      p50,
			C2VP99Ms:      p99,
			QueryAgeP50Ms: b.Metrics["qage-p50-ms"],
			QueryAgeP99Ms: b.Metrics["qage-p99-ms"],
		}
		for _, stage := range freshnessStageOrder {
			sp50, ok := b.Metrics[stage+"-p50-ms"]
			if !ok {
				continue
			}
			s.Stages = append(s.Stages, FreshnessStage{
				Stage: stage, P50Ms: sp50, P99Ms: b.Metrics[stage+"-p99-ms"],
			})
		}
		return s
	}
	return nil
}

// WatchdogSummary is derived from BenchmarkWatchdog's sub-benchmarks.
type WatchdogSummary struct {
	// ApplyOnNs / ApplyOffNs are ns/op of the end-to-end redo apply loop with
	// the watchdog evaluating at its production interval vs disabled.
	ApplyOnNs  float64 `json:"apply_on_ns"`
	ApplyOffNs float64 `json:"apply_off_ns"`
	// OverheadPct is the watchdog's cost on the apply hot path as a percentage
	// of the watchdog-off baseline. Benchmark noise can make it slightly
	// negative; the acceptance budget is < 2%.
	OverheadPct float64 `json:"overhead_pct"`
	// TickNs is the isolated cost of one obs.Progress heartbeat tick (the
	// per-record instrument the apply workers always pay, watchdog or not).
	TickNs float64 `json:"tick_ns"`
}

// watchdogSummary extracts the summary from a parsed benchmark set; nil when
// the run did not include BenchmarkWatchdog's On/Off pair.
func watchdogSummary(benchmarks []Benchmark) *WatchdogSummary {
	ns := map[string]float64{}
	for _, b := range benchmarks {
		name, _, _ := strings.Cut(b.Name, "-")
		if sub, ok := strings.CutPrefix(name, "BenchmarkWatchdog/"); ok {
			ns[sub] = b.Metrics["ns/op"]
		}
	}
	s := &WatchdogSummary{
		ApplyOnNs:  ns["ApplyOn"],
		ApplyOffNs: ns["ApplyOff"],
		TickNs:     ns["HeartbeatTick"],
	}
	if s.ApplyOnNs <= 0 || s.ApplyOffNs <= 0 {
		return nil
	}
	s.OverheadPct = (s.ApplyOnNs - s.ApplyOffNs) / s.ApplyOffNs * 100
	return s
}

// FleetSummary is derived from BenchmarkFleetOverload's reported metrics.
type FleetSummary struct {
	// Sessions is the concurrent scan-session pool size the storm ran with.
	Sessions float64 `json:"sessions"`
	// RouteP50Ms / RouteP99Ms are placement-latency quantiles across every
	// router Place attempt, sheds included — the "bounded p99" claim.
	RouteP50Ms float64 `json:"route_p50_ms"`
	RouteP99Ms float64 `json:"route_p99_ms"`
	// PlacedPerSec / ShedPerSec are admission outcomes over the storm: sessions
	// placed on a reader vs shed with ErrOverloaded at the admission gate.
	PlacedPerSec float64 `json:"placed_per_sec"`
	ShedPerSec   float64 `json:"shed_per_sec"`
	// ApplyBaseCVs / ApplyLoadCVs are redo apply throughput (CVs/s) without and
	// with the storm; ApplyRatioPct is loaded/baseline ×100 (budget >= 90).
	ApplyBaseCVs  float64 `json:"apply_base_cvs_per_sec"`
	ApplyLoadCVs  float64 `json:"apply_load_cvs_per_sec"`
	ApplyRatioPct float64 `json:"apply_ratio_pct"`
}

// fleetSummary extracts the summary from a parsed benchmark set; nil when the
// run did not include BenchmarkFleetOverload (or its metrics are incomplete).
func fleetSummary(benchmarks []Benchmark) *FleetSummary {
	for _, b := range benchmarks {
		if name, _, _ := strings.Cut(b.Name, "-"); name != "BenchmarkFleetOverload" {
			continue
		}
		base, okB := b.Metrics["apply-base-cvs/s"]
		load, okL := b.Metrics["apply-load-cvs/s"]
		p99, okP := b.Metrics["route-p99-ms"]
		if !okB || !okL || !okP || base <= 0 {
			return nil
		}
		return &FleetSummary{
			Sessions:      b.Metrics["sessions"],
			RouteP50Ms:    b.Metrics["route-p50-ms"],
			RouteP99Ms:    p99,
			PlacedPerSec:  b.Metrics["placed/s"],
			ShedPerSec:    b.Metrics["shed/s"],
			ApplyBaseCVs:  base,
			ApplyLoadCVs:  load,
			ApplyRatioPct: load / base * 100,
		}
	}
	return nil
}

// MorselSummary is derived from BenchmarkMorselScaling's sub-benchmarks: one
// point per worker count, each with its speedup over the serial (P1) run.
type MorselSummary struct {
	// SerialNs is the P1 baseline ns/op the speedups are computed against.
	SerialNs float64 `json:"serial_ns"`
	// Points holds one entry per worker count, in sub-benchmark order.
	Points []MorselPoint `json:"points"`
}

// MorselPoint is one worker-count measurement of the scaling sweep.
type MorselPoint struct {
	// Workers is the requested scan parallelism (PMax reports GOMAXPROCS).
	Workers float64 `json:"workers"`
	Ns      float64 `json:"ns"`
	// Speedup is serial ns/op over this point's ns/op (1.0 at P1).
	Speedup float64 `json:"speedup"`
	// MorselsPerOp / StealsPerOp are per-query scheduling granules and
	// off-affinity executions.
	MorselsPerOp float64 `json:"morsels_per_op"`
	StealsPerOp  float64 `json:"steals_per_op"`
}

// morselSummary extracts the summary from a parsed benchmark set; nil when
// the run did not include BenchmarkMorselScaling's serial baseline.
func morselSummary(benchmarks []Benchmark) *MorselSummary {
	s := &MorselSummary{}
	for _, b := range benchmarks {
		name, _, _ := strings.Cut(b.Name, "-")
		if !strings.HasPrefix(name, "BenchmarkMorselScaling/") {
			continue
		}
		p := MorselPoint{
			Workers:      b.Metrics["workers"],
			Ns:           b.Metrics["ns/op"],
			MorselsPerOp: b.Metrics["morsels/op"],
			StealsPerOp:  b.Metrics["steals/op"],
		}
		if strings.HasSuffix(name, "/P1") {
			s.SerialNs = p.Ns
		}
		s.Points = append(s.Points, p)
	}
	if s.SerialNs <= 0 || len(s.Points) == 0 {
		return nil
	}
	for i := range s.Points {
		if s.Points[i].Ns > 0 {
			s.Points[i].Speedup = s.SerialNs / s.Points[i].Ns
		}
	}
	return s
}

// CheckpointSummary is derived from BenchmarkCheckpointRestart's metrics.
type CheckpointSummary struct {
	// RestoreMs is restart-to-serving restoring the newest snapshot and
	// replaying only redo past its checkpoint SCN; ColdRebuildMs is the same
	// restart forced onto the full row-store rebuild path (budget: >= 10x).
	RestoreMs     float64 `json:"restore_ms"`
	ColdRebuildMs float64 `json:"cold_rebuild_ms"`
	Speedup       float64 `json:"speedup"`
	// SnapshotBytes is the on-disk checkpoint file size.
	SnapshotBytes float64 `json:"snapshot_bytes"`
	// ApplyRatioPct is paced churn-and-sync wall time with one checkpoint in
	// flight as a percentage of the undisturbed baseline.
	ApplyRatioPct float64 `json:"apply_ratio_pct"`
}

// checkpointSummary extracts the summary from a parsed benchmark set; nil when
// the run did not include BenchmarkCheckpointRestart (or it is incomplete).
func checkpointSummary(benchmarks []Benchmark) *CheckpointSummary {
	for _, b := range benchmarks {
		if name, _, _ := strings.Cut(b.Name, "-"); name != "BenchmarkCheckpointRestart" {
			continue
		}
		restore, okR := b.Metrics["restore-ms"]
		cold, okC := b.Metrics["coldrebuild-ms"]
		if !okR || !okC || restore <= 0 {
			return nil
		}
		return &CheckpointSummary{
			RestoreMs:     restore,
			ColdRebuildMs: cold,
			Speedup:       cold / restore,
			SnapshotBytes: b.Metrics["snapshot-bytes"],
			ApplyRatioPct: b.Metrics["apply-ckpt-ratio-pct"],
		}
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parse reads `go test -bench` output and collects the context header and
// every benchmark result line; unrecognized lines (PASS, ok, test logs) are
// ignored so the tool can sit directly on a piped `go test` run.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	doc.Failover = failoverSummary(doc.Benchmarks)
	doc.GroupBy = groupBySummary(doc.Benchmarks)
	doc.Freshness = freshnessSummary(doc.Benchmarks)
	doc.Watchdog = watchdogSummary(doc.Benchmarks)
	doc.Fleet = fleetSummary(doc.Benchmarks)
	doc.Morsel = morselSummary(doc.Benchmarks)
	doc.Checkpoint = checkpointSummary(doc.Benchmarks)
	return doc, sc.Err()
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   1000   1234567 ns/op   96 B/op   2 allocs/op   5.6 cvs/s
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
