// Command adgdemo is a guided tour of the DBIM-on-ADG reproduction: it brings
// up a primary + standby pair, narrates each stage of the pipeline (redo
// shipping, parallel apply, QuerySCN advancement, population, mining,
// invalidation flush), and runs the paper's Q1 through the SQL layer on both
// sides.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"dbimadg"
	"dbimadg/internal/workload"
)

func main() {
	rows := flag.Int("rows", 50000, "wide-table rows to load")
	metrics := flag.String("metrics", "", "serve /metrics and /debug/stats on this host:port (e.g. 127.0.0.1:9187 for adgtop)")
	hold := flag.Duration("hold", 0, "keep the deployment (and metrics endpoint) alive this long after the tour")
	flag.Parse()

	step := func(format string, args ...any) {
		fmt.Printf("\n== "+format+"\n", args...)
	}

	step("opening deployment: 1 primary instance -> redo -> 1 standby instance")
	c, err := dbimadg.Open(dbimadg.Config{
		MetricsAddr:       *metrics,
		LagSampleInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if addr := c.MetricsAddr(); addr != "" {
		fmt.Printf("   telemetry: http://%s/metrics  /debug/stats  /debug/trace  (try: adgtop -addr %s)\n", addr, addr)
	}

	step("CREATE TABLE C101 (the paper's 101-column wide table) + INMEMORY on the standby")
	tbl, err := c.Primary().Instance(0).CreateTable(workload.WideTableSpec("C101", 1))
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AlterInMemory(1, "C101", "", dbimadg.InMemoryAttr{
		Enabled: true, Service: dbimadg.ServiceStandbyOnly,
	}); err != nil {
		log.Fatal(err)
	}

	step("loading %d rows on the primary (every insert generates redo)", *rows)
	sess := c.PrimarySession(0)
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	for lo := int64(0); lo < int64(*rows); lo += 512 {
		tx, _ := sess.Begin()
		for id := lo; id < lo+512 && id < int64(*rows); id++ {
			if _, err := tx.Insert(tbl, workload.FillRow(tbl.Schema(), id, rng)); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("   loaded in %v; primary SCN=%d\n", time.Since(start).Round(time.Millisecond), c.Stats().PrimarySCN)

	step("standby: parallel redo apply + QuerySCN advancement")
	if !c.WaitStandbyCaughtUp(120 * time.Second) {
		log.Fatal("standby lagging")
	}
	st := c.Stats()
	fmt.Printf("   QuerySCN=%d, %d records applied by hash(DBA)-partitioned workers\n",
		st.Standby.QuerySCN, st.Standby.RecordsApplied)

	step("background population of the standby IMCS (quiesce-synchronized snapshots)")
	if !c.WaitPopulated(240 * time.Second) {
		log.Fatal("population did not settle")
	}
	st = c.Stats()
	fmt.Printf("   %d IMCUs, %d rows, %.1f MiB compressed\n",
		st.StandbyStore.Units, st.StandbyStore.Rows,
		float64(st.StandbyStore.MemBytes)/(1<<20))

	step("Table 1's Q1 via SQL on BOTH sides (row store on primary, IMCS on standby)")
	sTbl, err := c.StandbyTable(1, "C101")
	if err != nil {
		log.Fatal(err)
	}
	binds := map[string]dbimadg.Bind{"1": dbimadg.NumBind(rng.Int63n(1000))}
	t0 := time.Now()
	pres, err := sess.QuerySQL(tbl, "SELECT * FROM C101 WHERE n1 = :1", binds)
	if err != nil {
		log.Fatal(err)
	}
	pdur := time.Since(t0)
	sby := c.StandbySession()
	t0 = time.Now()
	sres, err := sby.QuerySQL(sTbl, "SELECT * FROM C101 WHERE n1 = :1", binds)
	if err != nil {
		log.Fatal(err)
	}
	sdur := time.Since(t0)
	fmt.Printf("   primary (row store):  %6d rows in %v\n", len(pres.Rows), pdur.Round(time.Microsecond))
	fmt.Printf("   standby (IMCS):       %6d rows in %v  (%.1fx faster, fromIMCS=%d)\n",
		len(sres.Rows), sdur.Round(time.Microsecond), float64(pdur)/float64(sdur), sres.FromIMCS)

	step("OLTP on primary -> mining -> journal -> commit table -> flush -> consistent standby")
	tx, _ := sess.Begin()
	n1 := tbl.Schema().ColIndex("n1")
	for i := int64(0); i < 100; i++ {
		if err := tx.UpdateByID(tbl, i, []uint16{uint16(n1)}, func(r *dbimadg.Row) {
			r.Nums[tbl.Schema().Col(n1).Slot()] = -1
		}); err != nil {
			log.Fatal(err)
		}
	}
	commitSCN, _ := tx.Commit()
	if !c.WaitStandbyCaughtUp(60 * time.Second) {
		log.Fatal("standby lagging after update")
	}
	res, err := sby.QuerySQL(sTbl, "SELECT COUNT(*) FROM C101 WHERE n1 = :v",
		map[string]dbimadg.Bind{"v": dbimadg.NumBind(-1)})
	if err != nil {
		log.Fatal(err)
	}
	st = c.Stats()
	fmt.Printf("   commitSCN=%d, standby QuerySCN=%d, COUNT(n1=-1)=%d (row store served %d)\n",
		commitSCN, st.Standby.QuerySCN, res.Count, res.FromRowStore)
	fmt.Printf("   pipeline totals: mined=%d flushed=%d advances=%d coarse=%d\n",
		st.Standby.MinedRecords, st.Standby.FlushedRecords,
		st.Standby.QuerySCNAdvances, st.Standby.CoarseInvals)

	step("telemetry registry snapshot (every counter/gauge/stage histogram)")
	fmt.Print(c.Observability().Snapshot().String())

	if *hold > 0 {
		if addr := c.MetricsAddr(); addr != "" {
			step("holding deployment for %v — poll it with: adgtop -addr %s", *hold, addr)
		} else {
			step("holding deployment for %v", *hold)
		}
		time.Sleep(*hold)
	}

	step("done — see cmd/adgbench for the full evaluation and EXPERIMENTS.md for results")
}
