// Command adgbench regenerates the paper's evaluation (§IV): every figure and
// table, at a configurable scale. Without -experiment it runs them all.
//
// Usage:
//
//	adgbench [-experiment fig9|fig10|table2|fig11|cpu|groupby|fleet|morsel|checkpoint|all]
//	         [-rows N] [-duration D] [-ops N] [-threads N] [-seed N]
//	         [-sessions N] [-telemetry]
//
// The paper's setup is 6M rows at 4000 ops/s for an hour on Exadata; the
// defaults here (300k rows, 10s per phase) reproduce the shapes — who wins
// and by roughly what factor — at laptop scale. See EXPERIMENTS.md for
// recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dbimadg/internal/experiments"
	"dbimadg/internal/obs"
	"dbimadg/internal/scanengine"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "fig9 | fig10 | table2 | fig11 | cpu | groupby | fleet | morsel | checkpoint | all")
		rows     = flag.Int("rows", 300000, "initial wide-table rows (paper: 6,000,000)")
		duration = flag.Duration("duration", 10*time.Second, "measured phase duration (paper: 1h)")
		ops      = flag.Int("ops", 0, "target DML throughput, ops/s (0 = auto-scale with rows; paper: 4000 on 6M rows)")
		threads  = flag.Int("threads", 0, "workload driver threads (0 = auto)")
		seed     = flag.Int64("seed", 1, "workload seed")
		sessions = flag.Int("sessions", 0, "fleet experiment's concurrent scan-session pool (0 = 10,000)")
		telem    = flag.Bool("telemetry", false, "print the standby telemetry registry snapshot after each measured phase")
	)
	flag.Parse()

	p := experiments.Params{
		Rows:          *rows,
		Duration:      *duration,
		TargetOps:     *ops,
		Threads:       *threads,
		Seed:          *seed,
		FleetSessions: *sessions,
	}
	if *telem {
		p.SnapshotSink = func(phase string, snap obs.Snapshot) {
			fmt.Printf("--- standby telemetry (%s) ---\n%s\n", phase, snap.String())
		}
		p.QueryLogSink = func(phase string, recs []obs.QueryRecord) {
			if len(recs) == 0 {
				return
			}
			const show = 5
			fmt.Printf("--- recent query profiles (%s; last %d of %d recorded) ---\n",
				phase, min(show, len(recs)), len(recs))
			for _, r := range recs[:min(show, len(recs))] {
				slow := ""
				if r.Slow {
					slow = " SLOW"
				}
				fmt.Printf("  #%d %s path=%s rows=%d wall=%v%s\n",
					r.Seq, r.Table, r.Path, r.Rows, r.Wall().Round(time.Microsecond), slow)
				if p, ok := r.Profile.(*scanengine.Profile); ok {
					fmt.Printf("     units scan=%d pruned=%d fallback=%d batches=%d | imcs=%d invalid=%d tail=%d rowstore=%d | p=%d morsels=%d steals=%d\n",
						p.UnitsScanned, p.UnitsPruned, p.UnitsFallback, p.Batches,
						p.RowsIMCS, p.RowsInvalid, p.RowsTail, p.RowsRowStore,
						p.Parallel, p.Morsels, p.Steals)
				}
			}
			fmt.Println()
		}
	}

	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	all := []runner{
		{"fig9", func() (fmt.Stringer, error) { return experiments.RunFig9(p) }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.RunFig10(p) }},
		{"table2", func() (fmt.Stringer, error) { return experiments.RunTable2(p) }},
		{"fig11", func() (fmt.Stringer, error) { return experiments.RunFig11(p) }},
		{"cpu", func() (fmt.Stringer, error) { return experiments.RunCPU(p) }},
		{"groupby", func() (fmt.Stringer, error) { return experiments.RunGroupBy(p) }},
		{"fleet", func() (fmt.Stringer, error) { return experiments.RunFleetOverload(p) }},
		{"morsel", func() (fmt.Stringer, error) { return experiments.RunMorsel(p) }},
		{"checkpoint", func() (fmt.Stringer, error) { return experiments.RunCheckpoint(p) }},
	}

	selected := all[:0:0]
	for _, r := range all {
		if *exp == "all" || *exp == r.name {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	eff := p.WithDefaults()
	fmt.Printf("DBIM-on-ADG evaluation — rows=%d duration=%v target=%d ops/s threads=%d scans=%.0f/s\n\n",
		eff.Rows, eff.Duration, eff.TargetOps, eff.Threads, eff.ScanRate)
	for _, r := range selected {
		start := time.Now()
		fmt.Printf("=== %s ===\n", r.name)
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
}
