// Command adgtop is a live terminal view of a running standby's redo/IMCS
// pipeline, in the spirit of top(1). It polls the instance's /debug/stats
// endpoint — served when standby.Config.MetricsAddr (or dbimadg.Config
// MetricsAddr) is set — and prints one line per interval: apply, mine and
// flush rates computed from counter deltas, plus the current derived lag
// gauges (the quantities behind the paper's Fig. 11 lag claims).
//
// Usage:
//
//	adgtop -addr 127.0.0.1:9187 [-interval 1s] [-n 0] [-queries 5] [-slow] [-freshness 3] [-health] [-fleet] [-checkpoint]
//
// Run cmd/adgdemo with -metrics 127.0.0.1:9187 -hold 2m in one terminal and
// adgtop in another to watch the pipeline drain. With -queries N, each sample
// is followed by a pane of the N most recent query profiles from the
// instance's /debug/queries endpoint (-slow restricts it to the slow-query
// log). With -freshness N, each sample is followed by the commit-to-visible
// SLO summary and the N most recent per-transaction span waterfalls from
// /debug/freshness. With -health, each sample is followed by the liveness
// watchdog's verdict and per-stage progress/backlog table from /debug/health
// (the endpoint a stalled pipeline answers with 503).
// With -fleet, each sample is followed by the reader-fleet pane from the
// /debug/stats "fleet" and "router" blocks: per-reader state, QuerySCN lag
// against the fleet watermark, in-flight/queued/shed counts, and the router's
// cumulative placement totals with per-interval rates.
// With -checkpoint, each sample is followed by the IMCS checkpointer pane from
// the /debug/stats "checkpoint" block: snapshot cadence, size and age, plus
// the restore-vs-rebuild counters of the snapshot-then-redo-catch-up restart
// path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"dbimadg/internal/obs"
	"dbimadg/internal/standby"
)

// standbyStats mirrors the exported fields of standby.Stats that adgtop
// renders; extra JSON fields are ignored.
type standbyStats struct {
	QuerySCN         uint64
	AppliedWatermark uint64
	DispatchedSCN    uint64
	RecordsApplied   int64
	MinedRecords     int64
	FlushedRecords   int64
	QuerySCNAdvances int64
}

// fleetReaderStats mirrors one row of the /debug/stats "fleet" block's
// per-reader table (fleet.ReaderStats).
type fleetReaderStats struct {
	ID       int    `json:"id"`
	State    string `json:"state"`
	QuerySCN uint64 `json:"query_scn"`
	LagSCN   uint64 `json:"lag_scn"`
	InFlight int    `json:"in_flight"`
	Queued   int    `json:"queued"`
	Admitted int64  `json:"admitted"`
	Shed     int64  `json:"shed"`
	PopUnits int64  `json:"populated_units"`
	Restored int64  `json:"restored_units"`
}

// fleetStats mirrors the /debug/stats "fleet" block (fleet.Stats).
type fleetStats struct {
	SpecReaders int                `json:"spec_readers"`
	Watermark   uint64             `json:"watermark_scn"`
	Readers     []fleetReaderStats `json:"readers"`
}

// routerTotals mirrors the /debug/stats "router" block (router.Totals).
type routerTotals struct {
	Placed     int64   `json:"placed"`
	Shed       int64   `json:"shed"`
	NoReader   int64   `json:"no_reader"`
	PlaceP50MS float64 `json:"place_p50_ms"`
	PlaceP99MS float64 `json:"place_p99_ms"`
}

// snapshot is the subset of the /debug/stats document adgtop consumes. Fleet
// and Router stay nil on nodes that run no reader fleet.
type snapshot struct {
	Standby    standbyStats       `json:"standby"`
	Gauges     map[string]float64 `json:"gauges"`
	Fleet      *fleetStats        `json:"fleet"`
	Router     *routerTotals      `json:"router"`
	Checkpoint *checkpointStats   `json:"checkpoint"`
}

// queryEntry is the subset of a /debug/queries record adgtop renders.
type queryEntry struct {
	Seq       int64         `json:"seq"`
	SQL       string        `json:"sql"`
	Table     string        `json:"table"`
	WallNanos int64         `json:"wall_ns"`
	Rows      int64         `json:"rows"`
	Path      string        `json:"path"`
	Slow      bool          `json:"slow"`
	Profile   *queryProfile `json:"profile"`
}

// queryProfile is the slice of the embedded scanengine.Profile that the
// queries pane shows: the morsel scheduler's per-query actuals.
type queryProfile struct {
	Parallel   int   `json:"parallel"`
	MorselRows int   `json:"morsel_rows"`
	Morsels    int64 `json:"morsels"`
	Steals     int64 `json:"steals"`
}

// queriesDoc is the /debug/queries response envelope.
type queriesDoc struct {
	SlowThresholdMS float64      `json:"slow_threshold_ms"`
	Total           int64        `json:"total"`
	SlowTotal       int64        `json:"slow_total"`
	Queries         []queryEntry `json:"queries"`
}

func fetch(client *http.Client, url string) (snapshot, error) {
	var s snapshot
	err := fetchJSON(client, url, &s)
	return s, err
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// printQueries renders the recent-queries pane under a sample line.
func printQueries(client *http.Client, addr string, n int, slowOnly bool) {
	url := fmt.Sprintf("http://%s/debug/queries?n=%d", addr, n)
	if slowOnly {
		url += "&slow=1"
	}
	var doc queriesDoc
	if err := fetchJSON(client, url, &doc); err != nil {
		fmt.Printf("  queries: %v\n", err)
		return
	}
	fmt.Printf("  queries: %d recorded, %d slow (threshold %.0fms)\n",
		doc.Total, doc.SlowTotal, doc.SlowThresholdMS)
	for _, q := range doc.Queries {
		mark := " "
		if q.Slow {
			mark = "!"
		}
		label := q.SQL
		if label == "" {
			label = "scan " + q.Table
		}
		sched := ""
		if p := q.Profile; p != nil && p.Morsels > 0 {
			sched = fmt.Sprintf("  [p=%d morsels=%d", p.Parallel, p.Morsels)
			if p.Steals > 0 {
				sched += fmt.Sprintf(" steals=%d", p.Steals)
			}
			sched += "]"
		}
		fmt.Printf("  %s #%-6d %-8s %8.3fms %8d rows  %s%s\n",
			mark, q.Seq, q.Path, float64(q.WallNanos)/1e6, q.Rows, label, sched)
	}
}

// freshnessDoc is the /debug/freshness response envelope.
type freshnessDoc struct {
	Summary obs.FreshnessSummary `json:"summary"`
	Spans   []obs.SpanJSON       `json:"spans"`
}

// printFreshness renders the commit-to-visible pane: the SLO quantile summary
// followed by the n most recent span waterfalls, one segment chain per span.
func printFreshness(client *http.Client, addr string, n int) {
	var doc freshnessDoc
	if err := fetchJSON(client, fmt.Sprintf("http://%s/debug/freshness?n=%d", addr, n), &doc); err != nil {
		fmt.Printf("  freshness: %v\n", err)
		return
	}
	st := doc.Summary.Stats
	c2v := doc.Summary.CommitToVisible
	fmt.Printf("  freshness: 1/%d sampled, %d complete, %d truncated, %d open | c2v p50 %.2fms p95 %.2fms p99 %.2fms\n",
		st.SampleEvery, st.Completed, st.Truncated, st.Open,
		c2v.P50*1e3, c2v.P95*1e3, c2v.P99*1e3)
	for _, sp := range doc.Spans {
		line := fmt.Sprintf("  scn %-8d txn %-6d %-9s %8.3fms  ",
			sp.SCN, sp.Txn, sp.State, float64(sp.CommitToVisible)/1e6)
		for i, seg := range sp.Segments {
			if i > 0 {
				line += " > "
			}
			line += fmt.Sprintf("%s %.3fms", seg.Stage, float64(seg.Dur)/1e6)
		}
		if sp.TruncatedWhy != "" {
			line += " [" + sp.TruncatedWhy + "]"
		}
		fmt.Println(line)
	}
}

// printHealth renders the liveness pane: the watchdog verdict and the
// per-stage progress/backlog table from /debug/health. The endpoint answers
// 503 when the watchdog has declared a stall — that is a payload, not an
// error, so the pane fetches it with its own status handling.
func printHealth(client *http.Client, addr string) {
	resp, err := client.Get(fmt.Sprintf("http://%s/debug/health", addr))
	if err != nil {
		fmt.Printf("  health: %v\n", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		fmt.Printf("  health: status %d\n", resp.StatusCode)
		return
	}
	var rep obs.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		fmt.Printf("  health: %v\n", err)
		return
	}
	line := fmt.Sprintf("  health: %s", rep.Verdict)
	if len(rep.Paused) > 0 {
		line += fmt.Sprintf(" (paused: %s)", strings.Join(rep.Paused, ", "))
	}
	if rep.Stalls > 0 {
		line += fmt.Sprintf(", %d stall(s) detected", rep.Stalls)
	}
	fmt.Println(line)
	for _, s := range rep.Stages {
		backlog := fmt.Sprintf("%d", s.Backlog)
		if s.Backlog < 0 {
			backlog = "-"
		}
		fmt.Printf("  %-9s %-8s count=%-10d backlog=%-8s advance %.1fs ago\n",
			s.Stage, s.State, s.Count, backlog, s.SinceAdvance)
	}
}

// printFleet renders the reader-fleet pane: the router's routing totals (with
// per-interval placement/shed rates from counter deltas) and one line per
// fleet reader — state, QuerySCN lag against the fleet watermark, in-flight
// and queued scans, cumulative admissions and sheds, populated IMCUs.
func printFleet(cur, prev snapshot, dt float64) {
	if cur.Fleet == nil {
		fmt.Println("  fleet: no fleet block on this node")
		return
	}
	rate := func(cur, prev int64) float64 {
		if dt <= 0 {
			return 0
		}
		return float64(cur-prev) / dt
	}
	f := cur.Fleet
	ready := 0
	for _, r := range f.Readers {
		if r.State == "READY" {
			ready++
		}
	}
	line := fmt.Sprintf("  fleet: %d/%d readers ready, watermark scn %d", ready, f.SpecReaders, f.Watermark)
	if rt := cur.Router; rt != nil {
		line += fmt.Sprintf(" | router placed %d shed %d no-reader %d", rt.Placed, rt.Shed, rt.NoReader)
		if prev.Router != nil {
			line += fmt.Sprintf(" (%.0f/s placed, %.0f/s shed)",
				rate(rt.Placed, prev.Router.Placed), rate(rt.Shed, prev.Router.Shed))
		}
		line += fmt.Sprintf(" | place p50 %.3fms p99 %.3fms", rt.PlaceP50MS, rt.PlaceP99MS)
	}
	fmt.Println(line)
	for _, r := range f.Readers {
		fmt.Printf("  reader %-3d %-12s scn=%-10d lag=%-8d inflight=%-3d queued=%-3d admitted=%-10d shed=%-10d pop=%-6d restored=%d\n",
			r.ID, r.State, r.QuerySCN, r.LagSCN, r.InFlight, r.Queued, r.Admitted, r.Shed, r.PopUnits, r.Restored)
	}
}

// checkpointStats mirrors the /debug/stats "checkpoint" block
// (standby.CheckpointStats); the block is absent when snapshotting is off.
type checkpointStats struct {
	Cycles           int64
	Written          int64
	Failures         int64
	LastSCN          uint64
	LastUnits        int
	LastBytes        int64
	LastTook         int64 // nanoseconds (time.Duration)
	LastUnix         int64
	LastErr          string
	TotalBytes       int64
	Restores         int64
	RestoreFallbacks int64
	LastRestoreSCN   uint64
	LastRestoreUnits int64
	UnitsRestored    int64
}

// printCheckpoint renders the checkpointer pane: write cadence and health plus
// the restore counters of the snapshot-then-redo-catch-up restart path.
func printCheckpoint(cp *checkpointStats) {
	if cp == nil {
		fmt.Println("  checkpoint: snapshotting not configured on this node")
		return
	}
	age := "-"
	if cp.LastUnix > 0 {
		age = time.Since(time.Unix(0, cp.LastUnix)).Round(time.Millisecond).String()
	}
	line := fmt.Sprintf("  checkpoint: %d written / %d failed, last scn=%d units=%d %.1fKB in %v (age %s), total %.1fMB",
		cp.Written, cp.Failures, cp.LastSCN, cp.LastUnits,
		float64(cp.LastBytes)/1024, time.Duration(cp.LastTook).Round(time.Microsecond), age,
		float64(cp.TotalBytes)/(1<<20))
	if cp.LastErr != "" {
		line += " ERR=" + cp.LastErr
	}
	fmt.Println(line)
	fmt.Printf("  restore: %d from snapshot, %d full rebuilds; last restore scn=%d units=%d; %d restored units live\n",
		cp.Restores, cp.RestoreFallbacks, cp.LastRestoreSCN, cp.LastRestoreUnits, cp.UnitsRestored)
}

const headerEvery = 20

func header() {
	fmt.Printf("%8s  %7s  %9s  %9s  %9s  %9s  %8s  %8s  %7s  %7s  %7s  %8s  %8s\n",
		"time", "role", "applied/s", "mined/s", "flushed/s", "scnadv/s",
		"applyLag", "stale", "jrnTxn", "ctPend", "popPend", "placed/s", "shed/s")
}

// routerRates renders the default pane's router-totals columns from counter
// deltas; "-" on nodes without a router block.
func routerRates(cur, prev snapshot, dt float64) (string, string) {
	if cur.Router == nil || prev.Router == nil || dt <= 0 {
		return "-", "-"
	}
	return fmt.Sprintf("%.0f", float64(cur.Router.Placed-prev.Router.Placed)/dt),
		fmt.Sprintf("%.0f", float64(cur.Router.Shed-prev.Router.Shed)/dt)
}

// roleOf renders the node's broker role. The broker_role gauge is registered
// by the role-transition broker and flips to 1 at promotion; a node without a
// broker (or before any transition) reports STANDBY.
func roleOf(g map[string]float64) string {
	if g["broker_role"] >= 1 {
		return "PRIMARY"
	}
	return "STANDBY"
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9187", "standby metrics endpoint (host:port)")
		interval = flag.Duration("interval", time.Second, "poll interval")
		count    = flag.Int("n", 0, "number of samples to print (0 = until interrupted)")
		queries  = flag.Int("queries", 0, "show the N most recent query profiles under each sample (0 = off)")
		slowOnly = flag.Bool("slow", false, "with -queries, show only slow-query-log entries")
		fresh    = flag.Int("freshness", 0, "show the commit-to-visible summary and N span waterfalls under each sample (0 = off)")
		health   = flag.Bool("health", false, "show the watchdog verdict and per-stage liveness table under each sample")
		fleetP   = flag.Bool("fleet", false, "show the reader-fleet table and router totals under each sample")
		ckptP    = flag.Bool("checkpoint", false, "show the IMCS checkpointer and restore counters under each sample")
	)
	flag.Parse()

	url := "http://" + *addr + "/debug/stats"
	client := &http.Client{Timeout: 5 * time.Second}

	prev, err := fetch(client, url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adgtop: %v\n", err)
		os.Exit(1)
	}
	prevAt := time.Now()

	for line := 0; *count == 0 || line < *count; line++ {
		time.Sleep(*interval)
		cur, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adgtop: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		rate := func(cur, prev int64) float64 {
			if dt <= 0 {
				return 0
			}
			return float64(cur-prev) / dt
		}
		if line%headerEvery == 0 {
			header()
		}
		placedRate, shedRate := routerRates(cur, prev, dt)
		fmt.Printf("%8s  %7s  %9.0f  %9.0f  %9.0f  %9.1f  %8.0f  %8.0f  %7.0f  %7.0f  %7.0f  %8s  %8s\n",
			now.Format("15:04:05"),
			roleOf(cur.Gauges),
			rate(cur.Standby.RecordsApplied, prev.Standby.RecordsApplied),
			rate(cur.Standby.MinedRecords, prev.Standby.MinedRecords),
			rate(cur.Standby.FlushedRecords, prev.Standby.FlushedRecords),
			rate(cur.Standby.QuerySCNAdvances, prev.Standby.QuerySCNAdvances),
			cur.Gauges[standby.GaugeApplyLag],
			cur.Gauges[standby.GaugeQueryStaleness],
			cur.Gauges[standby.GaugeJournalTxns],
			cur.Gauges[standby.GaugeCommitPending],
			cur.Gauges["imcs_population_pending"],
			placedRate, shedRate,
		)
		if *queries > 0 {
			printQueries(client, *addr, *queries, *slowOnly)
		}
		if *fresh > 0 {
			printFreshness(client, *addr, *fresh)
		}
		if *health {
			printHealth(client, *addr)
		}
		if *fleetP {
			printFleet(cur, prev, dt)
		}
		if *ckptP {
			printCheckpoint(cur.Checkpoint)
		}
		prev, prevAt = cur, now
	}
}
