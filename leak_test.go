package dbimadg_test

import (
	"testing"
	"time"

	"dbimadg"
	"dbimadg/internal/testutil"
)

// TestCloseLeavesNoPipelineGoroutines deploys the full stack — TCP transport,
// multi-instance primary, watchdog, metrics endpoint — runs traffic, then
// closes the cluster and requires every pipeline goroutine (receivers, apply
// workers, flusher, population engine, watchdog, HTTP server) to exit. A
// worker that survives Close is a leak that compounds across restarts, and
// the watchdog itself must not become the goroutine it was built to catch.
func TestCloseLeavesNoPipelineGoroutines(t *testing.T) {
	cfg := quickCfg()
	cfg.UseTCP = true
	cfg.PrimaryInstances = 2
	cfg.MetricsAddr = "127.0.0.1:0"
	c, err := dbimadg.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable(simpleSpec("T", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AlterInMemory(1, "T", "", dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServiceStandbyOnly}); err != nil {
		t.Fatal(err)
	}
	insertRows(t, c, tbl, 0, 300)
	if !c.WaitStandbyCaughtUp(10*time.Second) || !c.WaitPopulated(10*time.Second) {
		t.Fatalf("sync failed: %+v", c.Stats())
	}
	if n := c.StandbyWatchdog().Stalls(); n != 0 {
		t.Fatalf("healthy run reported %d stall(s)", n)
	}
	c.Close()
	testutil.NoGoroutineLeak(t, "dbimadg/")
}
