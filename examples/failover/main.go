// Failover walkthrough: run OLTP against a primary with a DBIM-enabled
// standby, leave a transaction in flight, lose the primary, and promote the
// standby with the role-transition broker. The point to watch is the WARM
// In-Memory Column Store: the IMCUs populated while the node was a standby
// keep serving analytics on the promoted primary with no repopulation — the
// paper's "the standby is a superset of the primary ... and can quickly
// switch roles" (§I) made concrete.
package main

import (
	"fmt"
	"log"
	"time"

	"dbimadg"
)

func main() {
	// Primary + standby over the TCP redo transport (the shipping link a real
	// failover would lose).
	c, err := dbimadg.Open(dbimadg.Config{UseTCP: true})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	tbl, err := c.CreateTable(&dbimadg.TableSpec{
		Name:   "ORDERS",
		Tenant: 1,
		Columns: []dbimadg.Column{
			{Name: "id", Kind: dbimadg.NumberKind},
			{Name: "qty", Kind: dbimadg.NumberKind},
			{Name: "region", Kind: dbimadg.VarcharKind},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AlterInMemory(1, "ORDERS", "", dbimadg.InMemoryAttr{
		Enabled: true,
		Service: dbimadg.ServiceStandbyOnly,
	}); err != nil {
		log.Fatal(err)
	}

	// OLTP: 20k committed orders.
	pri := c.PrimarySession(0)
	s := tbl.Schema()
	regions := []string{"north", "south", "east", "west"}
	tx, _ := pri.Begin()
	for i := int64(0); i < 20000; i++ {
		r := dbimadg.NewRow(s)
		r.Nums[s.Col(0).Slot()] = i
		r.Nums[s.Col(1).Slot()] = i % 50
		r.Strs[s.Col(2).Slot()] = regions[i%4]
		if _, err := tx.Insert(tbl, r); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if !c.WaitStandbyCaughtUp(30*time.Second) || !c.WaitPopulated(30*time.Second) {
		log.Fatal("standby did not sync")
	}

	// One transaction stays in flight when the primary dies: its DML shipped,
	// its commit never will. Promotion must roll it back.
	inflight, _ := pri.Begin()
	r := dbimadg.NewRow(s)
	r.Nums[s.Col(0).Slot()] = 99999
	r.Nums[s.Col(1).Slot()] = 1
	r.Strs[s.Col(2).Slot()] = "lost"
	if _, err := inflight.Insert(tbl, r); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("before failure: standby QuerySCN=%d, %d IMCUs populated\n",
		c.StandbyMaster().QuerySCN(), c.Stats().StandbyStore.Units)

	// FAILOVER: terminal recovery drains shipped redo to its end, publishes
	// one final QuerySCN, rolls back the in-flight transaction, and opens the
	// standby read-write — with the column store retained, not rebuilt.
	res, err := c.Failover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FAILOVER in %v: promoted at SCN %d, %d in-flight txn rolled back, %d IMCUs retained WARM\n",
		res.Elapsed, res.PromotedSCN, res.RolledBackTxns, res.WarmUnits)

	// Clients re-resolve their handles against the promoted catalog.
	pTbl, err := c.PrimaryTable(1, "ORDERS")
	if err != nil {
		log.Fatal(err)
	}
	sess := c.PrimarySession(0)

	// The first post-promotion analytic scan is served from the RETAINED
	// column store — no repopulation stood between failure and answers.
	prof, err := sess.ExplainAnalyze(&dbimadg.Query{
		Table:   pTbl,
		Filters: []dbimadg.Filter{dbimadg.EqStr(2, "west")},
		Agg:     dbimadg.AggSum, AggCol: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first post-promotion scan: %d rows, %d served from the warm IMCS\n",
		prof.ResultRows, prof.RowsIMCS)
	fmt.Printf("population engine after promotion: %d units built (0 = fully warm)\n",
		c.PromotedMaster().Engine().Stats().UnitsPopulated)

	// And the promoted node is a full primary: new DML commits, visible to
	// the next scan, invalidating the retained store at commit time.
	tx, _ = sess.Begin()
	for _, id := range []int64{10, 20, 30} {
		if err := tx.UpdateByID(pTbl, id, []uint16{1}, func(r *dbimadg.Row) {
			r.Nums[s.Col(1).Slot()] = 9999
		}); err != nil {
			log.Fatal(err)
		}
	}
	commitSCN, _ := tx.Commit()
	got, err := sess.Query(&dbimadg.Query{
		Table:   pTbl,
		Filters: []dbimadg.Filter{dbimadg.EqNum(1, 9999)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-promotion OLTP: commitSCN=%d, updated rows visible=%d\n",
		commitSCN, len(got.Rows))
}
