// Quickstart: bring up a primary + standby pair, create a table, enable
// In-Memory population on the standby, run OLTP on the primary, and query the
// standby's column store at its published QuerySCN.
package main

import (
	"fmt"
	"log"
	"time"

	"dbimadg"
)

func main() {
	// One primary instance, one standby instance, in-process redo transport.
	c, err := dbimadg.Open(dbimadg.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// CREATE TABLE orders (id NUMBER, qty NUMBER, region VARCHAR2) — the
	// definition replicates to the standby through a redo marker.
	tbl, err := c.CreateTable(&dbimadg.TableSpec{
		Name:   "ORDERS",
		Tenant: 1,
		Columns: []dbimadg.Column{
			{Name: "id", Kind: dbimadg.NumberKind},
			{Name: "qty", Kind: dbimadg.NumberKind},
			{Name: "region", Kind: dbimadg.VarcharKind},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// ALTER TABLE orders INMEMORY ... DISTRIBUTE BY SERVICE standby-only:
	// the standby populates its column store; the primary stays row-only.
	if err := c.AlterInMemory(1, "ORDERS", "", dbimadg.InMemoryAttr{
		Enabled: true,
		Service: dbimadg.ServiceStandbyOnly,
	}); err != nil {
		log.Fatal(err)
	}

	// OLTP on the primary: insert 10k orders, then update a few.
	pri := c.PrimarySession(0)
	tx, _ := pri.Begin()
	s := tbl.Schema()
	regions := []string{"north", "south", "east", "west"}
	for i := int64(0); i < 10000; i++ {
		r := dbimadg.NewRow(s)
		r.Nums[s.Col(0).Slot()] = i
		r.Nums[s.Col(1).Slot()] = i % 50
		r.Strs[s.Col(2).Slot()] = regions[i%4]
		if _, err := tx.Insert(tbl, r); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	tx, _ = pri.Begin()
	for _, id := range []int64{10, 20, 30} {
		if err := tx.UpdateByID(tbl, id, []uint16{1}, func(r *dbimadg.Row) {
			r.Nums[s.Col(1).Slot()] = 9999
		}); err != nil {
			log.Fatal(err)
		}
	}
	commitSCN, _ := tx.Commit()
	fmt.Printf("OLTP done; last commitSCN = %d\n", commitSCN)

	// Wait for the standby to reach the primary's SCN and populate its IMCS.
	if !c.WaitStandbyCaughtUp(30 * time.Second) {
		log.Fatal("standby did not catch up")
	}
	if !c.WaitPopulated(30 * time.Second) {
		log.Fatal("population did not settle")
	}
	fmt.Printf("standby QuerySCN = %d (>= commitSCN: consistent)\n", c.StandbyMaster().QuerySCN())

	// Analytics on the standby: the scan runs against the compressed column
	// store, reconciled with the SMUs so the three updated rows come from
	// the row store at the same consistent snapshot.
	sTbl, err := c.StandbyTable(1, "ORDERS")
	if err != nil {
		log.Fatal(err)
	}
	sby := c.StandbySession()

	res, err := sby.Query(&dbimadg.Query{
		Table:   sTbl,
		Filters: []dbimadg.Filter{dbimadg.EqStr(2, "west")},
		Agg:     dbimadg.AggSum, AggCol: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT SUM(qty) WHERE region='west' → sum=%d over %d rows "+
		"(%d from IMCS, %d from row store)\n",
		res.Sum, res.Count, res.FromIMCS, res.FromRowStore)

	res, err = sby.Query(&dbimadg.Query{
		Table:   sTbl,
		Filters: []dbimadg.Filter{dbimadg.EqNum(1, 9999)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT * WHERE qty=9999 → %d rows (the updates; fromIMCS=%d "+
		"fromRowStore=%d — the population snapshot already included these "+
		"commits, so no reconciliation was needed)\n",
		len(res.Rows), res.FromIMCS, res.FromRowStore)

	st := c.Stats()
	fmt.Printf("standby store: %d IMCUs, %d rows, %d invalid, %.1f KiB\n",
		st.StandbyStore.Units, st.StandbyStore.Rows, st.StandbyStore.InvalidRows,
		float64(st.StandbyStore.MemBytes)/1024)
	fmt.Printf("pipeline: %d records applied, %d invalidations mined, %d flushed\n",
		st.Standby.RecordsApplied, st.Standby.MinedRecords, st.Standby.FlushedRecords)
}
