// RAC scale-out (paper §III.F): a two-instance primary RAC generating two
// redo threads, and a standby RAC with a SIRA master plus a reader instance.
// IMCUs distribute across the standby instances via the home-location map;
// invalidation groups for remotely-homed IMCUs ship to the reader's local
// recovery coordinator, and queries behave like parallel queries over all
// instances' column stores.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dbimadg"
)

func main() {
	c, err := dbimadg.Open(dbimadg.Config{
		PrimaryInstances: 2,
		StandbyReaders:   1,
		BlocksPerIMCU:    16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	tbl, err := c.CreateTable(&dbimadg.TableSpec{
		Name:   "EVENTS",
		Tenant: 1,
		Columns: []dbimadg.Column{
			{Name: "id", Kind: dbimadg.NumberKind},
			{Name: "kind", Kind: dbimadg.NumberKind},
			{Name: "payload", Kind: dbimadg.VarcharKind},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.AlterInMemory(1, "EVENTS", "", dbimadg.InMemoryAttr{
		Enabled: true, Service: dbimadg.ServiceStandbyOnly,
	}); err != nil {
		log.Fatal(err)
	}

	// OLTP spread across both primary instances (two redo threads; the
	// standby's log merger re-serializes them by SCN).
	rng := rand.New(rand.NewSource(3))
	s := tbl.Schema()
	id := int64(0)
	for round := 0; round < 40; round++ {
		sess := c.PrimarySession(round % 2)
		tx, err := sess.Begin()
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			r := dbimadg.NewRow(s)
			r.Nums[s.Col(0).Slot()] = id
			r.Nums[s.Col(1).Slot()] = rng.Int63n(8)
			r.Strs[s.Col(2).Slot()] = fmt.Sprintf("e%04d", rng.Int63n(2000))
			id++
			if _, err := tx.Insert(tbl, r); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	if !c.WaitStandbyCaughtUp(60*time.Second) || !c.WaitPopulated(120*time.Second) {
		log.Fatal("sync failed")
	}

	st := c.Stats()
	fmt.Printf("IMCU distribution by home-location map:\n")
	fmt.Printf("  standby master: %3d IMCUs, %6d rows\n", st.StandbyStore.Units, st.StandbyStore.Rows)
	for i, rs := range st.ReaderStores {
		fmt.Printf("  reader %d:       %3d IMCUs, %6d rows\n", i+1, rs.Units, rs.Rows)
	}

	// Update rows on instance 0; invalidations route to whichever standby
	// instance homes the affected IMCUs — including the reader, over the
	// batched invalidation-group pipeline.
	sess := c.PrimarySession(0)
	tx, _ := sess.Begin()
	for k := int64(0); k < 200; k++ {
		if err := tx.UpdateByID(tbl, k*97%id, []uint16{1}, func(r *dbimadg.Row) {
			r.Nums[s.Col(1).Slot()] = 777
		}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if !c.WaitStandbyCaughtUp(60 * time.Second) {
		log.Fatal("standby lagging after updates")
	}

	sTbl, _ := c.StandbyTable(1, "EVENTS")
	// Query via the master's session and via the reader's local QuerySCN.
	for name, q := range map[string]*dbimadg.Session{
		"master session": c.StandbySession(),
	} {
		res, err := q.Query(&dbimadg.Query{
			Table:   sTbl,
			Filters: []dbimadg.Filter{dbimadg.EqNum(1, 777)},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: kind=777 rows=%d (row store: %d — freshly updated)\n",
			name, len(res.Rows), res.FromRowStore)
	}
	reader, err := c.StandbyReaderSession(0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reader.Query(&dbimadg.Query{Table: sTbl, Agg: dbimadg.AggCount})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader session: COUNT(*)=%d at its local QuerySCN=%d (fromIMCS=%d)\n",
		res.Count, reader.Snapshot(), res.FromIMCS)

	fmt.Printf("pipeline: mined=%d flushed=%d queryscn-advances=%d\n",
		st.Standby.MinedRecords, st.Standby.FlushedRecords, st.Standby.QuerySCNAdvances)
}
