// Capacity expansion (paper Fig. 2): a partitioned SALES fact table whose
// latest month is populated in the primary's column store while the whole
// year is populated on the standby, with the DIMENSION table on both — so the
// combined in-memory capacity exceeds either instance, and each workload is
// served by the right copy through services.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dbimadg"
)

const monthsOfData = 12

func main() {
	c, err := dbimadg.Open(dbimadg.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// SALES range-partitioned by month.
	var parts []dbimadg.PartitionSpec
	for m := int64(1); m <= monthsOfData; m++ {
		parts = append(parts, dbimadg.PartitionSpec{
			Name: fmt.Sprintf("M%02d", m), Lo: m, Hi: m + 1,
		})
	}
	sales, err := c.CreateTable(&dbimadg.TableSpec{
		Name:   "SALES",
		Tenant: 1,
		Columns: []dbimadg.Column{
			{Name: "id", Kind: dbimadg.NumberKind},
			{Name: "month", Kind: dbimadg.NumberKind},
			{Name: "product_id", Kind: dbimadg.NumberKind},
			{Name: "amount", Kind: dbimadg.NumberKind},
		},
		IdentityCol:  0,
		PartitionCol: 1,
		Partitions:   parts,
	})
	if err != nil {
		log.Fatal(err)
	}
	products, err := c.CreateTable(&dbimadg.TableSpec{
		Name:   "PRODUCTS",
		Tenant: 1,
		Columns: []dbimadg.Column{
			{Name: "product_id", Kind: dbimadg.NumberKind},
			{Name: "category", Kind: dbimadg.VarcharKind},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Placement policy (the paper's three services):
	//  - every SALES month on the standby,
	//  - only the current month (December) additionally on the primary,
	//  - the dimension table on both for join-friendly access.
	for m := 1; m <= monthsOfData; m++ {
		svc := dbimadg.ServiceStandbyOnly
		if m == monthsOfData {
			svc = dbimadg.ServicePrimaryAndStandby
		}
		if err := c.AlterInMemory(1, "SALES", fmt.Sprintf("M%02d", m),
			dbimadg.InMemoryAttr{Enabled: true, Service: svc, Priority: m}); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.AlterInMemory(1, "PRODUCTS", "",
		dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServicePrimaryAndStandby}); err != nil {
		log.Fatal(err)
	}

	// Load a year of sales and a product catalog.
	rng := rand.New(rand.NewSource(7))
	pri := c.PrimarySession(0)
	ps := products.Schema()
	tx, _ := pri.Begin()
	categories := []string{"tools", "garden", "kitchen", "sports"}
	for pid := int64(0); pid < 100; pid++ {
		r := dbimadg.NewRow(ps)
		r.Nums[0] = pid
		r.Strs[0] = categories[pid%4]
		if _, err := tx.Insert(products, r); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	ss := sales.Schema()
	const rowsPerMonth = 4000
	id := int64(0)
	for m := int64(1); m <= monthsOfData; m++ {
		tx, _ := pri.Begin()
		for i := 0; i < rowsPerMonth; i++ {
			r := dbimadg.NewRow(ss)
			r.Nums[0] = id
			r.Nums[1] = m
			r.Nums[2] = rng.Int63n(100)
			r.Nums[3] = rng.Int63n(500)
			id++
			if _, err := tx.Insert(sales, r); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	if !c.WaitStandbyCaughtUp(60*time.Second) || !c.WaitPopulated(60*time.Second) {
		log.Fatal("replication/population did not settle")
	}

	st := c.Stats()
	fmt.Printf("capacity expansion in effect:\n")
	fmt.Printf("  primary IMCS: %6d rows in %2d IMCUs (December + dimension)\n",
		st.PrimaryStore.Rows, st.PrimaryStore.Units)
	fmt.Printf("  standby IMCS: %6d rows in %2d IMCUs (full year + dimension)\n",
		st.StandbyStore.Rows, st.StandbyStore.Units)

	// Operational query on the primary — current month only, served by the
	// primary's IMCS (partition pruning keeps it off the cold months).
	dec, err := pri.Query(&dbimadg.Query{
		Table:   sales,
		Filters: []dbimadg.Filter{dbimadg.EqNum(1, monthsOfData)},
		Agg:     dbimadg.AggSum, AggCol: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary:  SUM(amount) December        = %8d  (%d rows, fromIMCS=%d)\n",
		dec.Sum, dec.Count, dec.FromIMCS)

	// Reporting on the standby — whole-year aggregate, columnar all the way.
	sSales, err := c.StandbyTable(1, "SALES")
	if err != nil {
		log.Fatal(err)
	}
	sby := c.StandbySession()
	year, err := sby.Query(&dbimadg.Query{
		Table: sSales, Agg: dbimadg.AggSum, AggCol: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby:  SUM(amount) full year       = %8d  (%d rows, fromIMCS=%d)\n",
		year.Sum, year.Count, year.FromIMCS)

	// A month-range report, pruned by partition and storage indexes.
	h1, err := sby.Query(&dbimadg.Query{
		Table:   sSales,
		Filters: []dbimadg.Filter{{Col: 1, Op: dbimadg.LE, Num: 6}},
		Agg:     dbimadg.AggCount,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby:  COUNT(*) months 1-6         = %8d  (fromIMCS=%d)\n",
		h1.Count, h1.FromIMCS)
}
