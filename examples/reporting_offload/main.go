// Reporting offload (paper §IV.A): OLTP runs on the primary while ad-hoc
// reporting scans run on the standby — first without DBIM-on-ADG (row-store
// scans), then with it (column-store scans) — printing the response-time
// improvement the paper's Fig. 9 reports.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"dbimadg"
	"dbimadg/internal/metrics"
)

const (
	rows      = 60000
	oltpOps   = 200 // paced update ops/s on the primary
	reportFor = 4 * time.Second
)

// metricsAddr, when set, serves each phase's observability endpoints
// (/metrics, /debug/stats, /debug/freshness, ...) while the phase runs.
var metricsAddr = flag.String("metrics", "", "serve observability endpoints on this addr (e.g. 127.0.0.1:9187)")

func main() {
	flag.Parse()
	fmt.Println("phase 1: reporting on the standby WITHOUT DBIM-on-ADG")
	without := runPhase(false)
	fmt.Println("phase 2: reporting on the standby WITH DBIM-on-ADG")
	with := runPhase(true)

	fmt.Printf("\nresults (Q1-style report: SELECT * WHERE n1 = :v):\n")
	fmt.Printf("  without DBIM: %v\n", without)
	fmt.Printf("  with DBIM:    %v\n", with)
	fmt.Printf("  median speedup: %.1fx (paper Fig. 9: ~100x at 6M rows on Exadata)\n",
		metrics.Speedup(without.Median, with.Median))
}

func runPhase(useDBIM bool) metrics.LatencySummary {
	c, err := dbimadg.Open(dbimadg.Config{
		MetricsAddr:          *metricsAddr,
		FreshnessSampleEvery: 1, // trace every commit end-to-end for the demo
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if *metricsAddr != "" {
		fmt.Printf("  observability on http://%s (try /debug/freshness?n=5)\n", c.MetricsAddr())
	}

	tbl, err := c.CreateTable(&dbimadg.TableSpec{
		Name:   "FACTS",
		Tenant: 1,
		Columns: []dbimadg.Column{
			{Name: "id", Kind: dbimadg.NumberKind},
			{Name: "n1", Kind: dbimadg.NumberKind},
			{Name: "c1", Kind: dbimadg.VarcharKind},
		},
		IdentityCol:  0,
		PartitionCol: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if useDBIM {
		if err := c.AlterInMemory(1, "FACTS", "", dbimadg.InMemoryAttr{
			Enabled: true, Service: dbimadg.ServiceStandbyOnly,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Load.
	pri := c.PrimarySession(0)
	s := tbl.Schema()
	rng := rand.New(rand.NewSource(11))
	const batch = 1000
	for lo := int64(0); lo < rows; lo += batch {
		tx, _ := pri.Begin()
		for i := lo; i < lo+batch && i < rows; i++ {
			r := dbimadg.NewRow(s)
			r.Nums[s.Col(0).Slot()] = i
			r.Nums[s.Col(1).Slot()] = rng.Int63n(1000)
			r.Strs[s.Col(2).Slot()] = fmt.Sprintf("tag_%03d", rng.Int63n(500))
			if _, err := tx.Insert(tbl, r); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	if !c.WaitStandbyCaughtUp(60 * time.Second) {
		log.Fatal("standby lagging")
	}
	if useDBIM && !c.WaitPopulated(120*time.Second) {
		log.Fatal("population did not settle")
	}

	// OLTP: paced updates on the primary for the whole reporting window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		tick := time.NewTicker(time.Second / oltpOps)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			tx, err := pri.Begin()
			if err != nil {
				return
			}
			id := rng.Int63n(rows)
			_ = tx.UpdateByID(tbl, id, []uint16{1}, func(r *dbimadg.Row) {
				r.Nums[s.Col(1).Slot()] = rng.Int63n(1000)
			})
			_, _ = tx.Commit()
		}
	}()

	// Reporting: closed-loop Q1-style scans on the standby.
	sTbl, err := c.StandbyTable(1, "FACTS")
	if err != nil {
		log.Fatal(err)
	}
	sby := c.StandbySession()
	rec := metrics.NewLatencyRecorder()
	deadline := time.Now().Add(reportFor)
	qrng := rand.New(rand.NewSource(17))
	for time.Now().Before(deadline) {
		start := time.Now()
		if _, err := sby.Query(&dbimadg.Query{
			Table:   sTbl,
			Filters: []dbimadg.Filter{dbimadg.EqNum(1, qrng.Int63n(1000))},
		}); err != nil {
			log.Fatal(err)
		}
		rec.Record(time.Since(start))
	}
	close(stop)
	wg.Wait()
	sum := rec.Summary()
	fmt.Printf("  %d reports, %s\n", sum.Count, sum)

	// EXPLAIN ANALYZE of the same report query: which IMCUs were pruned and
	// which path (column store, invalid-row fallback, tails, row store)
	// served each matching row — the "why" behind the latencies above.
	prof, err := sby.ExplainSQL(sTbl, "EXPLAIN ANALYZE SELECT * FROM FACTS WHERE n1 = :v",
		map[string]dbimadg.Bind{"v": dbimadg.NumBind(qrng.Int63n(1000))})
	if err != nil {
		log.Fatal(err)
	}
	if got := prof.RowsIMCS + prof.RowsInvalid + prof.RowsTail + prof.RowsRowStore; got != prof.ResultRows {
		log.Fatalf("profile paths sum to %d, result cardinality %d", got, prof.ResultRows)
	}
	fmt.Printf("  EXPLAIN ANALYZE of the report query:\n")
	for _, line := range strings.Split(strings.TrimRight(prof.String(), "\n"), "\n") {
		fmt.Printf("    %s\n", line)
	}
	total, slow := c.QueryLog().Totals()
	fmt.Printf("  query log: %d queries recorded, %d slow (threshold %v)\n",
		total, slow, c.QueryLog().SlowThreshold())

	// Commit-to-visible freshness: every commit above was traced from the
	// primary's commit wall clock to QuerySCN publication (the live span
	// waterfalls are on /debug/freshness when -metrics is set).
	fsum := c.Freshness().Summary()
	fmt.Printf("  freshness: %d spans complete | commit-to-visible p50 %.2fms p95 %.2fms p99 %.2fms | first-query age p50 %.2fms\n",
		fsum.Stats.Completed,
		fsum.CommitToVisible.P50*1e3, fsum.CommitToVisible.P95*1e3, fsum.CommitToVisible.P99*1e3,
		fsum.QueryAge.P50*1e3)

	fmt.Printf("  standby telemetry at end of phase:\n")
	for _, line := range strings.Split(strings.TrimRight(c.Observability().Snapshot().String(), "\n"), "\n") {
		fmt.Printf("    %s\n", line)
	}
	return sum
}
