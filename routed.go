package dbimadg

import (
	"fmt"
	"strings"
	"sync/atomic"

	"dbimadg/internal/fleet"
	"dbimadg/internal/router"
	"dbimadg/internal/scanengine"
	"dbimadg/internal/scn"
	"dbimadg/internal/sqlmini"
)

// Typed routing errors (one source of truth in internal/fleet; errors.Is
// matches across every layer that re-exports them).
var (
	// ErrNoReader: no standby reader can serve the request — the fleet is
	// empty (e.g. after a failover consumed the standby), no reader is Ready,
	// or none meets the freshness / read-your-writes bound within the wait.
	ErrNoReader = fleet.ErrNoReader
	// ErrOverloaded: admission control shed the scan — every eligible reader
	// is at its concurrent-scan limit with a full queue, or the queue
	// deadline expired.
	ErrOverloaded = fleet.ErrOverloaded
)

// FleetSpec declares the reader-fleet shape (see fleet.Spec).
type FleetSpec = fleet.Spec

// RouterOptions constrain a routed session's placements (see router.Options).
type RouterOptions = router.Options

// FleetReader is one fleet reader standby.
type FleetReader = fleet.Reader

// RoutedSession is a read-only session placed through the fleet router: every
// query is routed to a Ready fleet reader satisfying the session's service,
// freshness bound, and read-your-writes token, under that reader's admission
// control. Unlike StandbySession it degrades explicitly — ErrOverloaded when
// the fleet is saturated, ErrNoReader when no reader qualifies — instead of
// queueing without bound.
//
// Read-your-writes: after a primary commit, hand the returned SCN to
// SetToken; every subsequent query is then served at a snapshot at or past
// it, across routing, reader removal, and switchover. A RoutedSession is safe
// for concurrent use.
type RoutedSession struct {
	c    *Cluster
	opts router.Options

	token    atomic.Uint64 // RYW floor, monotone
	lastSnap atomic.Uint64 // snapshot of the most recent query
}

// RoutedSession opens a router-placed session. The zero Options route via the
// standby-only service with no freshness bound and the default bounded wait.
func (c *Cluster) RoutedSession(opts RouterOptions) *RoutedSession {
	return &RoutedSession{c: c, opts: opts}
}

// SetToken raises the session's read-your-writes floor to t (typically the
// SCN a primary commit returned). Lower values are ignored: the floor is
// monotone, so tokens from several commits compose.
func (s *RoutedSession) SetToken(t SCN) {
	for {
		cur := s.token.Load()
		if uint64(t) <= cur || s.token.CompareAndSwap(cur, uint64(t)) {
			return
		}
	}
}

// Token returns the session's current read-your-writes floor.
func (s *RoutedSession) Token() SCN { return scn.SCN(s.token.Load()) }

// LastSnapshot returns the snapshot SCN of the session's most recent query
// (0 before the first). Never below the token at the time of that query —
// the read-your-writes guarantee, asserted by tests.
func (s *RoutedSession) LastSnapshot() SCN { return scn.SCN(s.lastSnap.Load()) }

// place routes one scan through the cluster's current router, folding the
// session's read-your-writes floor into the placement constraints.
func (s *RoutedSession) place() (*router.Placement, error) {
	s.c.mu.Lock()
	rtr := s.c.rtr
	s.c.mu.Unlock()
	if rtr == nil {
		return nil, ErrNoReader
	}
	opts := s.opts
	if tok := scn.SCN(s.token.Load()); tok > opts.Token {
		opts.Token = tok
	}
	return rtr.Place(opts)
}

// Query executes a scan on a routed fleet reader at that reader's published
// QuerySCN (>= the session's token).
func (s *RoutedSession) Query(q *Query) (*Result, error) {
	p, err := s.place()
	if err != nil {
		return nil, err
	}
	defer p.Release()
	master := s.c.StandbyMaster()
	// The reader's QuerySCN is monotone, so it still satisfies the token the
	// placement was checked against.
	snap := p.Reader.QuerySCN()
	s.lastSnap.Store(uint64(snap))
	ex := s.c.tuneExec(scanengine.NewExecutor(master.Txns(), p.Reader.Store()), master)
	ex.Obs = master.ScanStats()
	return ex.Run(q, snap)
}

// QuerySQL parses and executes a SELECT against tbl on a routed fleet reader
// (the same SQL subset as Session.QuerySQL).
func (s *RoutedSession) QuerySQL(tbl *Table, sql string, binds map[string]Bind) (*Result, error) {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	if st.Explain {
		return nil, fmt.Errorf("dbimadg: EXPLAIN statements return a plan, not rows")
	}
	if !strings.EqualFold(st.TableName, tbl.Name) {
		return nil, fmt.Errorf("sqlmini: statement targets %q, got table %q", st.TableName, tbl.Name)
	}
	q, err := st.Compile(tbl, binds)
	if err != nil {
		return nil, err
	}
	return s.Query(q)
}
