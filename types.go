package dbimadg

import (
	"dbimadg/internal/obs"
	"dbimadg/internal/rowstore"
	"dbimadg/internal/scanengine"
	"dbimadg/internal/scn"
	"dbimadg/internal/service"
	"dbimadg/internal/txn"
)

// Re-exported core types: the public API surface of the library. These are
// aliases, so values returned by Cluster methods interoperate directly.
type (
	// SCN is a System Change Number, the logical database clock.
	SCN = scn.SCN
	// TenantID identifies a pluggable tenant.
	TenantID = rowstore.TenantID
	// ColKind is a column data type (NumberKind or VarcharKind).
	ColKind = rowstore.ColKind
	// Column defines one column of a table.
	Column = rowstore.Column
	// Schema is an immutable ordered column list.
	Schema = rowstore.Schema
	// Row is one row image (values split by kind).
	Row = rowstore.Row
	// TableSpec declares a table for CreateTable.
	TableSpec = rowstore.TableSpec
	// PartitionSpec declares one range partition.
	PartitionSpec = rowstore.PartitionSpec
	// Table is a catalog table handle.
	Table = rowstore.Table
	// Partition is one range partition of a table.
	Partition = rowstore.Partition
	// InMemoryAttr is the INMEMORY population policy of a table/partition.
	InMemoryAttr = rowstore.InMemoryAttr
	// RowID addresses one row slot.
	RowID = rowstore.RowID

	// Txn is a read-write transaction on the primary.
	Txn = txn.Txn

	// Query describes a scan (filters, projection, aggregation).
	Query = scanengine.Query
	// Filter is one column comparison.
	Filter = scanengine.Filter
	// Result is a completed scan.
	Result = scanengine.Result
	// CmpOp is a comparison operator.
	CmpOp = scanengine.CmpOp
	// AggKind selects a pushed-down aggregate.
	AggKind = scanengine.AggKind
	// AggSpec names one select-list aggregate (Query.Aggs entry).
	AggSpec = scanengine.AggSpec
	// GroupedResult is a GROUP BY result (Result.Grouped), with groups in
	// deterministic key order regardless of scan parallelism.
	GroupedResult = scanengine.GroupedResult
	// GroupRow is one output group of a GroupedResult.
	GroupRow = scanengine.GroupRow
	// GroupValue is one group-key value of a GroupRow.
	GroupValue = scanengine.GroupValue

	// ScanProfile is a per-query EXPLAIN / EXPLAIN ANALYZE document: the
	// partition and IMCU pruning decisions plus (under ANALYZE) per-path
	// row counts and wall times.
	ScanProfile = scanengine.Profile
	// PartitionProfile is one partition's entry in a ScanProfile.
	PartitionProfile = scanengine.PartitionProfile
	// TaskProfile is one scan task's entry in a ScanProfile.
	TaskProfile = scanengine.TaskProfile
	// QueryRecord is one entry of the standby's recent/slow query log.
	QueryRecord = obs.QueryRecord
	// QueryLog is the bounded recent/slow query log behind /debug/queries.
	QueryLog = obs.QueryLog

	// ServiceRole is a database role a service runs on.
	ServiceRole = service.Role
)

// Column kinds.
const (
	// NumberKind is a 64-bit integer column (NUMBER).
	NumberKind = rowstore.KindNumber
	// VarcharKind is a string column (VARCHAR2).
	VarcharKind = rowstore.KindVarchar
)

// Comparison operators.
const (
	EQ = scanengine.EQ
	NE = scanengine.NE
	LT = scanengine.LT
	LE = scanengine.LE
	GT = scanengine.GT
	GE = scanengine.GE
)

// Aggregations.
const (
	AggNone  = scanengine.AggNone
	AggCount = scanengine.AggCount
	AggSum   = scanengine.AggSum
	AggMin   = scanengine.AggMin
	AggMax   = scanengine.AggMax
)

// Service roles.
const (
	rolePrimary = service.RolePrimary
	// RolePrimary marks a service running on the primary database.
	RolePrimary = service.RolePrimary
	// RoleStandby marks a service running on the standby database.
	RoleStandby = service.RoleStandby
)

// EqNum builds an equality filter on a number column (by schema column
// index).
func EqNum(col int, v int64) Filter { return scanengine.EqNum(col, v) }

// EqStr builds an equality filter on a varchar column.
func EqStr(col int, v string) Filter { return scanengine.EqStr(col, v) }

// NewRow allocates a zero row shaped for a schema.
func NewRow(s *Schema) Row { return rowstore.NewRow(s) }
