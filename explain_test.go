package dbimadg_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"dbimadg"
)

// explainFixture opens a cluster with an in-memory standby table of 100 rows
// and an aggressive slow-query threshold, so every query lands in both logs.
func explainFixture(t *testing.T) (*dbimadg.Cluster, *dbimadg.Table, *dbimadg.Table, *dbimadg.Session) {
	t.Helper()
	cfg := quickCfg()
	cfg.SlowQueryThreshold = time.Nanosecond
	c, err := dbimadg.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	tbl, err := c.CreateTable(simpleSpec("T", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AlterInMemory(1, "T", "", dbimadg.InMemoryAttr{Enabled: true, Service: dbimadg.ServiceStandbyOnly}); err != nil {
		t.Fatal(err)
	}
	insertRows(t, c, tbl, 0, 100)
	if !c.WaitStandbyCaughtUp(10*time.Second) || !c.WaitPopulated(10*time.Second) {
		t.Fatal("sync failed")
	}
	sTbl, err := c.StandbyTable(1, "T")
	if err != nil {
		t.Fatal(err)
	}
	return c, tbl, sTbl, c.StandbySession()
}

func TestExplainSQLEndToEnd(t *testing.T) {
	c, _, sTbl, sby := explainFixture(t)

	// Plan-only EXPLAIN: pruning decisions, no actuals.
	plan, err := sby.ExplainSQL(sTbl, "EXPLAIN SELECT * FROM T WHERE n1 = :v",
		map[string]dbimadg.Bind{"v": dbimadg.NumBind(3)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Analyze || plan.WallNanos != 0 || plan.ResultRows != 0 {
		t.Fatalf("EXPLAIN carries actuals: %+v", plan)
	}
	if plan.Table != "T" || len(plan.Partitions) == 0 {
		t.Fatalf("plan incomplete: %+v", plan)
	}

	// EXPLAIN ANALYZE: per-path actuals summing to the result cardinality.
	prof, err := sby.ExplainSQL(sTbl, "EXPLAIN ANALYZE SELECT * FROM T WHERE n1 = :v",
		map[string]dbimadg.Bind{"v": dbimadg.NumBind(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Analyze || prof.ResultRows != 10 {
		t.Fatalf("ANALYZE actuals: analyze=%v rows=%d, want true/10", prof.Analyze, prof.ResultRows)
	}
	if got := prof.RowsIMCS + prof.RowsInvalid + prof.RowsTail + prof.RowsRowStore; got != prof.ResultRows {
		t.Fatalf("paths sum to %d, cardinality %d", got, prof.ResultRows)
	}
	if !strings.Contains(prof.String(), "EXPLAIN ANALYZE") {
		t.Fatalf("rendering missing mode:\n%s", prof.String())
	}

	// A bare SELECT through ExplainSQL plans without executing.
	plan2, err := sby.ExplainSQL(sTbl, "SELECT COUNT(*) FROM T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Analyze {
		t.Fatal("bare SELECT through ExplainSQL executed")
	}

	// QuerySQL refuses EXPLAIN statements — they return plans, not rows.
	if _, err := sby.QuerySQL(sTbl, "EXPLAIN SELECT * FROM T", nil); err == nil || !strings.Contains(err.Error(), "ExplainSQL") {
		t.Fatalf("QuerySQL accepted EXPLAIN: %v", err)
	}

	// The typed API mirrors the SQL front end.
	q := &dbimadg.Query{Table: sTbl, Filters: []dbimadg.Filter{dbimadg.EqNum(1, 3)}}
	res, prof2, err := sby.QueryProfiled(q)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Rows)) != prof2.ResultRows || prof2.ResultRows != 10 {
		t.Fatalf("QueryProfiled: rows=%d profile=%d", len(res.Rows), prof2.ResultRows)
	}
	if _, err := sby.Explain(q); err != nil {
		t.Fatal(err)
	}
	if prof3, err := sby.ExplainAnalyze(q); err != nil || !prof3.Analyze {
		t.Fatalf("ExplainAnalyze: %v %+v", err, prof3)
	}

	// Every executed standby query above landed in the cluster's query log,
	// and with a 1ns threshold all of them are slow.
	log := c.QueryLog()
	total, slow := log.Totals()
	if total == 0 || slow != total {
		t.Fatalf("query log totals = %d/%d, want all slow", total, slow)
	}
	recs := log.Recent(0)
	if len(recs) == 0 {
		t.Fatal("query log empty")
	}
	var sawSQL bool
	for _, r := range recs {
		if strings.Contains(r.SQL, "EXPLAIN ANALYZE SELECT") {
			sawSQL = true
		}
	}
	if !sawSQL {
		t.Fatalf("SQL text not recorded: %+v", recs)
	}
}

// TestSessionConcurrentQueries drives one standby session from many
// goroutines while the primary keeps writing — the -race target for the
// profiling hot path.
func TestSessionConcurrentQueries(t *testing.T) {
	c, tbl, sTbl, sby := explainFixture(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pri := c.PrimarySession(0)
		s := tbl.Schema()
		for i := int64(100); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := pri.Begin()
			if err != nil {
				return
			}
			r := dbimadg.NewRow(s)
			r.Nums[s.Col(0).Slot()] = i
			r.Nums[s.Col(1).Slot()] = i % 10
			r.Strs[s.Col(2).Slot()] = "vX"
			_, _ = tx.Insert(tbl, r)
			_, _ = tx.Commit()
		}
	}()

	var qwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		qwg.Add(1)
		go func(g int) {
			defer qwg.Done()
			for i := 0; i < 25; i++ {
				if _, err := sby.Query(&dbimadg.Query{
					Table:   sTbl,
					Filters: []dbimadg.Filter{dbimadg.EqNum(1, int64(g))},
				}); err != nil {
					t.Error(err)
					return
				}
				if _, err := sby.QuerySQL(sTbl, "SELECT COUNT(*) FROM T", nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := sby.ExplainSQL(sTbl, "EXPLAIN ANALYZE SELECT * FROM T WHERE id < 50", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	qwg.Wait()
	close(stop)
	wg.Wait()

	total, _ := c.QueryLog().Totals()
	if total < 200 {
		t.Fatalf("query log recorded %d, want >= 200", total)
	}
}
